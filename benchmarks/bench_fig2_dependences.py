"""Figure 2: queue persist dependences.

Quantifies the constraint classes of Figure 2 on real traces: total
persist ordering constraints (transitive-closure pairs) per insert for
both queue designs under strict, epoch, and strand persistency.  The
strict-epoch delta is class "A" (serialised data persists); the
epoch-strand delta is class "B" (serialised inserts).  Benchmarks the
persist-DAG construction.
"""

from repro.core import analyze_graph
from repro.harness import figure2_dependences


def test_fig2_dependence_classes(runner, out_dir, benchmark):
    lines = ["design threads strict epoch strand removed_A removed_B"]
    for design in ("cwl", "2lc"):
        summary = figure2_dependences(runner, design=design, threads=1)
        constraints = summary.constraints_per_insert
        lines.append(
            f"{design} 1 "
            f"{constraints['strict']:.1f} {constraints['epoch']:.1f} "
            f"{constraints['strand']:.1f} "
            f"{summary.removed_by_epoch:.1f} {summary.removed_by_strand:.1f}"
        )
        # Paper: each relaxation removes constraints ("A" then "B").
        assert constraints["strict"] > constraints["epoch"] > constraints["strand"]
        assert summary.removed_by_epoch > 0
        assert summary.removed_by_strand > 0
    (out_dir / "fig2_dependences.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    trace = runner.workload("cwl", 1, False).trace
    benchmark(lambda: analyze_graph(trace, "epoch"))
