"""Ablation: buffered strict persistency (paper Section 4.1, extension).

Buffered strict persistency drains a totally-ordered persist queue while
execution runs ahead, stalling when the buffer fills or a persist sync
empties it.  The paper introduces the design but does not evaluate it; we
sweep buffer depth and persist-sync frequency on the single-thread CWL
persist arrival stream derived from the trace and the instruction cost
model.
"""

from repro.nvramdev import (
    BufferedStrictConfig,
    buffered_strict_time,
    schedule_from_trace,
)

DEPTHS = (1, 4, 16, 64, 256)


def test_buffered_strict_depth_sweep(runner, out_dir, benchmark):
    workload = runner.workload("cwl", 1, False)
    schedule = schedule_from_trace(workload.trace)
    persists, execution_time = schedule.persist_times, schedule.execution_time
    lines = ["depth slowdown stall_us"]
    slowdowns = []
    for depth in DEPTHS:
        config = BufferedStrictConfig(persist_latency=500e-9, depth=depth)
        result = buffered_strict_time(persists, execution_time, config)
        slowdowns.append(result.slowdown)
        lines.append(
            f"{depth} {result.slowdown:.2f} {result.stall_time * 1e6:.1f}"
        )
    # Persist syncs every 25 inserts on the deepest buffer.
    sync_every = max(1, len(persists) // 25)
    syncs = persists[::sync_every]
    config = BufferedStrictConfig(persist_latency=500e-9, depth=256)
    synced = buffered_strict_time(persists, execution_time, config, syncs)
    lines.append(f"synced(256) {synced.slowdown:.2f} {synced.stall_time * 1e6:.1f}")
    (out_dir / "ablation_buffered_strict.txt").write_text(
        "\n".join(lines) + "\n"
    )
    print("\n" + "\n".join(lines))

    # Deeper buffers only help; syncs only hurt.
    assert all(a >= b - 1e-9 for a, b in zip(slowdowns, slowdowns[1:]))
    assert synced.stall_time >= 0
    # Persists arrive faster than they drain (500 ns each), so even the
    # deepest buffer cannot reach native speed: the serial drain dominates.
    assert slowdowns[-1] > 1.0

    benchmark(
        lambda: buffered_strict_time(
            persists,
            execution_time,
            BufferedStrictConfig(persist_latency=500e-9, depth=64),
        )
    )
