"""Ablation: lock algorithm choice (beyond the paper).

The paper uses MCS locks because local spinning minimises conflicting
accesses.  This ablation swaps in ticket and test-and-set locks and
measures the epoch-persistency critical path of 4-thread CWL: noisier
locks create more cross-thread conflict edges, which epoch persistency
turns into persist ordering constraints.
"""

from repro.core import analyze
from repro.queue import run_insert_workload

THREADS = 4
INSERTS = 40


def workload_for(lock_kind):
    return run_insert_workload(
        design="cwl",
        threads=THREADS,
        inserts_per_thread=INSERTS,
        lock_kind=lock_kind,
        racing=True,
        seed=17,
    )


def test_lock_algorithm_conflict_footprint(out_dir, benchmark):
    results = {}
    for kind in ("mcs", "ticket", "test_and_set"):
        result = workload_for(kind)
        analysis = analyze(result.trace, "epoch")
        results[kind] = {
            "critical_path_per_insert": analysis.critical_path_per(
                result.total_inserts
            ),
            "events_per_insert": result.events_per_insert,
        }
    lines = ["lock cp_per_insert events_per_insert"]
    for kind, row in results.items():
        lines.append(
            f"{kind} {row['critical_path_per_insert']:.3f} "
            f"{row['events_per_insert']:.1f}"
        )
    (out_dir / "ablation_locks.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    # All lock algorithms preserve correctness; the workload completed.
    for row in results.values():
        assert row["critical_path_per_insert"] > 0

    benchmark.pedantic(lambda: workload_for("mcs"), rounds=1, iterations=1)
