"""Figure 3: achievable rate vs persist latency (CWL, one thread).

Sweeps persist latency over the paper's 10 ns - 100 us log range for
strict, epoch, and strand persistency; asserts the compute-bound plateau,
the persist-bound 1/latency tails, and the break-even ordering (paper:
strict ~17 ns, epoch ~119 ns, strand in the microseconds).  Writes
``out/fig3_latency.csv`` and benchmarks the sweep itself.
"""

import pytest

from repro.harness import figure3_latency_sweep


def test_fig3_latency_sweep(runner, out_dir, benchmark):
    figure = benchmark.pedantic(
        lambda: figure3_latency_sweep(runner), rounds=3, iterations=1
    )
    figure.to_csv(out_dir / "fig3_latency.csv")
    figure.to_svg(out_dir / "fig3_latency.svg", log_y=True)
    notes = "\n".join(f"{k} = {v:.3e}" for k, v in figure.notes.items())
    (out_dir / "fig3_breakevens.txt").write_text(notes + "\n")
    print("\n" + notes)

    strict = figure.notes["breakeven_strict_s"]
    epoch = figure.notes["breakeven_epoch_s"]
    strand = figure.notes["breakeven_strand_s"]
    # Paper's knees: ~17 ns, ~119 ns, > 1 us (we assert order of magnitude).
    assert 5e-9 < strict < 5e-8
    assert 5e-8 < epoch < 5e-7
    assert strand > 1e-6
    # Paper: "Persists limit the most conservative persistency models even
    # at DRAM-like write latencies" — strict is persist-bound at 50 ns.
    assert strict < 50e-9
    # Curves are non-increasing with latency and end persist-bound.
    for series in figure.series:
        ys = series.ys()
        assert all(a >= b for a, b in zip(ys, ys[1:]))
        # Tail falls inversely with latency.
        (x1, y1), (x2, y2) = series.points[-2], series.points[-1]
        assert y2 == pytest.approx(y1 * x1 / x2, rel=0.01)
    # Relaxed models dominate stricter ones at every latency.
    strict_ys = figure.by_name("strict").ys()
    epoch_ys = figure.by_name("epoch").ys()
    strand_ys = figure.by_name("strand").ys()
    assert all(e >= s for e, s in zip(epoch_ys, strict_ys))
    assert all(t >= e for t, e in zip(strand_ys, epoch_ys))
