"""Recovery-correctness benchmark: failure injection throughput.

Not a paper table, but the load-bearing correctness machinery: measures
how fast the recovery observer can materialise failure-state images and
run queue recovery, and asserts zero violations across every minimal cut
of a multi-threaded racing-epochs run (the adversarial configuration).
"""

from repro.core import FailureInjector, analyze_graph
from repro.queue import run_insert_workload, verify_recovery


def test_recovery_injection_sweep(out_dir, benchmark):
    result = run_insert_workload(
        design="cwl", threads=4, inserts_per_thread=12, racing=True, seed=23
    )
    graph = analyze_graph(result.trace, "epoch").graph
    injector = FailureInjector(graph, result.base_image)

    checked = 0
    for _, image in injector.minimal_images():
        verify_recovery(image, result.queue.base, result.expected)
        checked += 1
    for _, image in injector.extension_images(50, seed=5):
        verify_recovery(image, result.queue.base, result.expected)
        checked += 1
    (out_dir / "recovery_injection.txt").write_text(
        f"persists={injector.persist_count} cuts_checked={checked} "
        f"violations=0\n"
    )
    assert checked > injector.persist_count

    def one_injection():
        for _, image in injector.extension_images(5, seed=9):
            verify_recovery(image, result.queue.base, result.expected)

    benchmark(one_injection)
