"""Table 1: relaxed persistency performance.

Regenerates the paper's Table 1 — persist-bound insert rate normalized to
instruction execution rate at 500 ns persist latency for {CWL, 2LC} x
{1, 8 threads} x {Strict, Epoch, Racing Epochs, Strand} — asserts its
qualitative shape, writes ``out/table1.txt``/``out/table1.csv``, and
benchmarks the critical-path analysis kernel that produces each cell.
"""

import csv

from repro.core import AnalysisConfig, analyze
from repro.harness import build_table1, format_table1, table1_rows

THREAD_COUNTS = (1, 8)


def test_table1(runner, out_dir, benchmark):
    table = build_table1(runner, thread_counts=THREAD_COUNTS)

    # -- artifacts -----------------------------------------------------------
    text = format_table1(table)
    (out_dir / "table1.txt").write_text(text + "\n")
    with open(out_dir / "table1.csv", "w", newline="") as stream:
        rows = table1_rows(table)
        writer = csv.DictWriter(stream, fieldnames=sorted(rows[0]))
        writer.writeheader()
        writer.writerows(rows)
    print("\n" + text)

    # -- paper shape assertions ------------------------------------------------
    # Strict persistency: ~30x slowdown for 1-thread CWL.
    assert table.normalized("cwl", 1, "strict") < 0.1
    # Epoch persistency recovers much of it but stays persist-bound.
    assert 0.1 < table.normalized("cwl", 1, "epoch") < 1.0
    # Racing epochs surpass instruction rate at 8 threads.
    assert table.normalized("cwl", 8, "racing_epochs") >= 1.0
    # 2LC under epoch reaches instruction rate with 8 threads.
    assert table.normalized("2lc", 8, "epoch") >= 1.0
    # Strand persistency: compute-bound in every configuration.
    for design in ("cwl", "2lc"):
        for threads in THREAD_COUNTS:
            assert table.cell(design, threads, "strand").compute_bound

    # -- kernel benchmark: one cell's analysis over the cached trace ---------
    trace = runner.workload("cwl", 1, False).trace
    benchmark(lambda: analyze(trace, "epoch", AnalysisConfig()))
