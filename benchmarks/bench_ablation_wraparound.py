"""Ablation: circular-buffer reuse bounds strand persistency (extension).

Our Table-1 workloads never wrap the data segment, so strand persistency
plus head coalescing drives the critical path to O(1) and the Figure-3
strand knee lands above the paper's ~6 us.  The paper's 100M-insert runs
reuse the circular buffer constantly: each reused slot's persist must
order after the previous persist to that slot (strong persist atomicity),
rebuilding a chain proportional to the reuse count.

This bench runs a bounded producer/consumer (insert + dequeue) over
shrinking capacities and shows strand's critical path per insert growing
as reuse tightens — the mechanism that keeps strand's break-even finite.
"""

from repro.core import analyze
from repro.queue import allocate_queue, make_cwl, padded_entry
from repro.sim import Machine, RandomScheduler

INSERTS = 240
ENTRY = 100  # 128-byte records
CAPACITIES = (512, 1024, 4096, 16384, 65536)  # 4..512 records


def run_bounded(capacity, seed=13):
    machine = Machine(scheduler=RandomScheduler(seed=seed))
    queue = allocate_queue(machine, capacity)
    dut = make_cwl(machine, queue, racing=True)
    slack = max(1, capacity // 128 - 1)

    def body(ctx):
        outstanding = 0
        for i in range(INSERTS):
            yield from dut.insert(ctx, padded_entry(0, i, ENTRY))
            outstanding += 1
            if outstanding >= slack:
                yield from dut.dequeue(ctx)
                outstanding -= 1
        while outstanding:
            yield from dut.dequeue(ctx)
            outstanding -= 1

    machine.spawn(body)
    return machine.run()


def test_wraparound_rebuilds_strand_chains(out_dir, benchmark):
    lines = ["capacity_bytes records reuse_factor strand_cp_per_insert"]
    cps = []
    for capacity in CAPACITIES:
        trace = run_bounded(capacity)
        result = analyze(trace, "strand")
        cp_per_insert = result.critical_path_per(INSERTS)
        cps.append(cp_per_insert)
        records = capacity // 128
        lines.append(
            f"{capacity} {records} {INSERTS / records:.1f} "
            f"{cp_per_insert:.3f}"
        )
    (out_dir / "ablation_wraparound.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    # Tighter buffers mean more reuse and longer strand chains.
    assert all(a >= b for a, b in zip(cps, cps[1:]))
    assert cps[0] > 5 * cps[-1]

    benchmark.pedantic(
        lambda: analyze(run_bounded(CAPACITIES[0]), "strand"),
        rounds=2,
        iterations=1,
    )
