"""Model-checker benchmark: DPOR + dedup vs. brute-force enumeration.

The workload is the two-thread 10-step publish idiom from the issue's
acceptance bar: a writer fills a two-word record, refreshes a shared
status word, and publishes a flag *without* a persist barrier; a
scrubber refreshes its own mirror word and touches the shared status
word once (the cross-thread conflict that keeps the schedule tree
non-trivial).  Each thread takes 11 scheduler steps, so brute force
would execute ``C(22, 11) = 705,432`` interleavings; the checker must
find the missing-barrier violations while executing at most 10% of
that — in practice a few dozen — and re-imaging at most 25% of the
cuts it checks (the idempotent refreshes make most cut contents
collide, which is exactly what the content memo exploits).

A scaled-down variant (one refresh each) is small enough to enumerate
exhaustively, tying the reduced run's violation set to ground truth in
the same file that records the reduction ratios.
"""

import json
import math

from repro.check import CheckConfig, check_build
from repro.errors import RecoveryError
from repro.sim import Machine

#: Step budget of the acceptance-bar idiom: 10 stores per thread.
FULL_REFRESHES = 7
FULL_MIRRORS = 9

#: The issue's acceptance thresholds.
MAX_SCHEDULE_FRACTION = 0.10
MAX_IMAGING_FRACTION = 0.25


def idiom_factory(refreshes, mirrors):
    """The publish idiom at a tunable step count.

    The writer performs ``2 + refreshes + 1`` stores, the scrubber
    ``mirrors + 1``; both touch the shared status word with the same
    value, so the refreshes commute without being free of conflicts.
    """

    def build(scheduler):
        machine = Machine(scheduler=scheduler)
        base = machine.persistent_heap.malloc(256)
        machine.record_base = base
        rec, flag, status, mirror = base, base + 32, base + 40, base + 128

        def writer(ctx):
            yield from ctx.store(rec, 0xAAAA)
            yield from ctx.store(rec + 8, 0xBBBB)
            for _ in range(refreshes):
                yield from ctx.store(status, 1)
            yield from ctx.store(flag, 1)  # publish without a barrier

        def scrubber(ctx):
            for _ in range(mirrors):
                yield from ctx.store(mirror, 1)
            yield from ctx.store(status, 1)

        machine.spawn(writer)
        machine.spawn(scrubber)
        return machine

    return build


def check_publication(image, machine):
    """A published record (flag set) must never be torn."""
    base = machine.record_base
    if image.read(base + 32, 8) == 1:
        if image.read(base, 8) != 0xAAAA or image.read(base + 8, 8) != 0xBBBB:
            raise RecoveryError("published record is torn")


def schedule_steps(refreshes, mirrors):
    """Scheduler decisions brute force would branch over: each thread
    takes stores+1 steps (THREAD_BEGIN; THREAD_END shares the last)."""
    writer = 2 + refreshes + 1 + 1
    scrubber = mirrors + 1 + 1
    return writer, scrubber


def exhaustive_count(refreshes, mirrors):
    """Brute-force interleavings, computed combinatorially."""
    writer, scrubber = schedule_steps(refreshes, mirrors)
    return math.comb(writer + scrubber, scrubber)


def test_check_beats_brute_force(out_dir, benchmark):
    full = idiom_factory(FULL_REFRESHES, FULL_MIRRORS)
    exhaustive = exhaustive_count(FULL_REFRESHES, FULL_MIRRORS)
    assert exhaustive == math.comb(22, 11) == 705_432

    result = check_build(
        full, check_publication, CheckConfig(max_schedules=None)
    )
    stats = result.stats

    # The checker must find the missing barrier under the relaxed
    # models (strict persistency orders the publish by program order).
    assert not result.ok
    models = {key[0] for key in result.distinct}
    assert models == {"epoch", "strand"}

    # Acceptance bar: <= 10% of brute force's schedules; in practice
    # the class count is minuscule, so pin an order of magnitude too.
    assert stats.executions <= MAX_SCHEDULE_FRACTION * exhaustive
    assert stats.executions <= 64

    # Acceptance bar: <= 25% of checked cuts re-imaged.
    assert stats.cuts_imaged <= MAX_IMAGING_FRACTION * stats.cuts_checked
    assert stats.cut_memo_hits > 0

    # Ground truth on the scaled-down idiom: unreduced enumeration of
    # every interleaving must report the identical violation set.
    small = idiom_factory(1, 1)
    reduced = check_build(
        small, check_publication, CheckConfig(max_schedules=None)
    )
    brute = check_build(
        small,
        check_publication,
        CheckConfig(max_schedules=None, reduction="none"),
    )
    assert brute.stats.schedules == exhaustive_count(1, 1) == math.comb(8, 3)
    assert set(reduced.distinct) == set(brute.distinct)
    assert reduced.stats.schedules < brute.stats.schedules

    (out_dir / "check_reduction.json").write_text(
        json.dumps(
            {
                "exhaustive_schedules": exhaustive,
                "explored_schedules": stats.schedules,
                "executions": stats.executions,
                "sleep_blocked": stats.sleep_blocked,
                "schedule_fraction": stats.executions / exhaustive,
                "cuts_checked": stats.cuts_checked,
                "cuts_imaged": stats.cuts_imaged,
                "cut_memo_hits": stats.cut_memo_hits,
                "imaging_ratio": stats.imaging_ratio,
                "dags_analyzed": stats.dags_analyzed,
                "dags_deduped": stats.dags_deduped,
                "distinct_violations": len(result.distinct),
                "small_idiom": {
                    "brute_schedules": brute.stats.schedules,
                    "reduced_schedules": reduced.stats.schedules,
                    "violations_agree": True,
                },
            },
            indent=2,
        )
        + "\n"
    )

    benchmark(
        lambda: check_build(
            full, check_publication, CheckConfig(max_schedules=None)
        )
    )
