"""Persist concurrency profile (extension figure).

Not a paper figure, but the clearest visualisation of what relaxation
does: the level histogram of the persist DAG shows how many persists can
drain in each wave.  Strict persistency produces a long, thin profile
(depth ~ persists); relaxed models compress depth into width.  Reported
as mean wave width (persists per critical-path level) for each model and
thread count.
"""

from repro.core import analyze

COLUMNS = (
    ("strict", False),
    ("epoch", False),
    ("epoch", True),
    ("strand", True),
)


def test_concurrency_profile(runner, out_dir, benchmark):
    lines = ["design threads model racing mean_wave depth persists"]
    widths = {}
    for design in ("cwl", "2lc"):
        for threads in (1, 8):
            for model, racing in COLUMNS:
                workload = runner.workload(design, threads, racing)
                result = analyze(workload.trace, model)
                key = (design, threads, model, racing)
                widths[key] = result.mean_concurrency
                lines.append(
                    f"{design} {threads} {model} {racing} "
                    f"{result.mean_concurrency:.2f} {result.critical_path} "
                    f"{result.persist_count}"
                )
    (out_dir / "concurrency_profile.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    for design in ("cwl", "2lc"):
        for threads in (1, 8):
            strict = widths[(design, threads, "strict", False)]
            epoch = widths[(design, threads, "epoch", False)]
            strand = widths[(design, threads, "strand", True)]
            # Each relaxation step widens the mean drain wave.
            assert strict <= epoch <= strand
            # Strict serialises CWL completely: one persist per wave.
            if design == "cwl":
                assert strict < 1.2

    trace = runner.workload("cwl", 8, True).trace
    benchmark(lambda: analyze(trace, "epoch").level_histogram)
