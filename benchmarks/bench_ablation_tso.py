"""Ablation: relaxing consistency (TSO) vs relaxing persistency (extension).

The paper argues that relaxing *persistency* is the right lever: strict
persistency under a relaxed consistency model only lets persists reorder
as far as stores do, and TSO's FIFO store buffers never reorder a
thread's stores with each other.  This bench runs the queue on the TSO
machine (store buffers, drain agents, forwarding) and measures strict-
persistency critical paths against the SC machine: the gain is ~nothing,
while relaxed persistency on either machine recovers orders of
magnitude — supporting the paper's Section 5 design choice.

Recovery is also re-verified on the TSO memory order.
"""

from repro.core import FailureInjector, analyze, analyze_graph
from repro.queue import run_insert_workload, verify_recovery

INSERTS = 60


def run(consistency, threads=1, seed=29):
    return run_insert_workload(
        design="cwl",
        threads=threads,
        inserts_per_thread=INSERTS // threads,
        racing=True,
        seed=seed,
        consistency=consistency,
    )


def test_tso_does_not_recover_persist_concurrency(out_dir, benchmark):
    lines = ["machine model cp_per_insert"]
    results = {}
    for consistency in ("sc", "tso"):
        workload = run(consistency)
        for model in ("strict", "epoch", "strand"):
            cp = analyze(workload.trace, model).critical_path_per(
                workload.total_inserts
            )
            results[(consistency, model)] = cp
            lines.append(f"{consistency} {model} {cp:.3f}")
    (out_dir / "ablation_tso.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    # TSO's FIFO buffers preserve each thread's store order, so strict
    # persistency gains (essentially) nothing over SC...
    sc_strict = results[("sc", "strict")]
    tso_strict = results[("tso", "strict")]
    assert abs(tso_strict - sc_strict) < 0.15 * sc_strict
    # ...while relaxed persistency wins big on either machine.
    assert results[("tso", "epoch")] < 0.25 * tso_strict
    assert results[("tso", "strand")] < 0.02 * tso_strict

    # Recovery still holds on the TSO memory order.
    workload = run("tso", threads=2, seed=31)
    graph = analyze_graph(workload.trace, "epoch").graph
    injector = FailureInjector(graph, workload.base_image)
    for _, image in injector.minimal_images(step=4):
        verify_recovery(image, workload.queue.base, workload.expected)
    for _, image in injector.extension_images(25, seed=7):
        verify_recovery(image, workload.queue.base, workload.expected)

    benchmark.pedantic(lambda: run("tso"), rounds=2, iterations=1)
