"""Ablation: BPFS-style conflict detection vs this paper's epoch model.

Section 5.2 argues BPFS differs subtly from epoch persistency: it tracks
conflicts only within the persistent address space and misses
load-before-store conflicts (TSO-style detection).  Both differences can
only *remove* ordering constraints, so the BPFS critical path lower-
bounds epoch's; this bench measures the gap on both queue designs.
"""

from repro.core import analyze


def test_bpfs_vs_epoch_conflict_detection(runner, out_dir, benchmark):
    lines = ["design threads epoch bpfs gap_percent"]
    for design, threads in (("cwl", 1), ("cwl", 8), ("2lc", 8)):
        workload = runner.workload(design, threads, True)
        inserts = workload.total_inserts
        epoch = analyze(workload.trace, "epoch").critical_path_per(inserts)
        bpfs = analyze(workload.trace, "bpfs").critical_path_per(inserts)
        gap = 100.0 * (epoch - bpfs) / epoch if epoch else 0.0
        lines.append(f"{design} {threads} {epoch:.3f} {bpfs:.3f} {gap:.1f}")
        # Weaker detection never adds constraints.
        assert bpfs <= epoch
    (out_dir / "ablation_bpfs.txt").write_text("\n".join(lines) + "\n")
    print("\n" + "\n".join(lines))

    trace = runner.workload("cwl", 8, True).trace
    benchmark(lambda: analyze(trace, "bpfs"))
