"""Record the engine's hot-path performance to ``out/BENCH_engine.json``.

Standalone script (``PYTHONPATH=src python benchmarks/record.py``): it
measures the two tentpole optimisations against their reference
implementations and records the issue's acceptance bars:

* **Analysis kernel** — ``analyze`` of an 8-thread CWL trace under
  strict/epoch/strand with the packed-bitset persist-DAG domain vs. the
  frozenset reference domain.  Results must be identical; the combined
  speedup must be >= 5x.
* **Prefix-sharing replay** — ``repro check`` of the publish-pair
  target with snapshot/restore prefix sharing vs. full re-execution.
  Violation sets and stats must be identical; the wall-clock speedup
  must be >= 3x.

Each timing is the best of ``TRIALS`` runs (the quantities are tenths
of seconds, so single runs are scheduler-noise dominated).  The JSON
also records raw throughput: simulated events/second for trace
generation and analysis, and checked cuts/second for the checker.
"""

import json
import time
from pathlib import Path

from repro.check import CheckConfig, check_target
from repro.core import analyze_graph
from repro.queue import run_insert_workload

#: Best-of-N timing trials per measured quantity.
TRIALS = 3

#: Analysis workload: the issue's 8-thread CWL trace.
ANALYZE_THREADS = 8
ANALYZE_INSERTS = 30
MODELS = ("strict", "epoch", "strand")

#: Checker workload: publish-pair, sized so execution (not analysis)
#: dominates — unreduced schedule tree, one relaxed model, bounded cuts.
CHECK_TARGET = "publish-pair"
CHECK_THREADS = 2
CHECK_OPS = 12
CHECK_CONFIG = dict(
    models=("epoch",),
    reduction="none",
    max_schedules=None,
    max_cuts_per_graph=64,
)

#: The issue's acceptance bars.
MIN_ANALYZE_SPEEDUP = 5.0
MIN_CHECK_SPEEDUP = 3.0


def best_of(fn, trials=TRIALS):
    """Return (best seconds, last result) over ``trials`` runs."""
    best = float("inf")
    result = None
    for _ in range(trials):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def measure_analysis():
    """Bitset vs. frozenset domain on the 8-thread CWL trace."""
    sim_seconds, workload = best_of(
        lambda: run_insert_workload(
            design="cwl",
            threads=ANALYZE_THREADS,
            inserts_per_thread=ANALYZE_INSERTS,
        )
    )
    trace = workload.trace
    events = len(trace.events)
    per_model = {}
    bitset_total = 0.0
    graph_total = 0.0
    for model in MODELS:
        bitset_seconds, bitset = best_of(
            lambda m=model: analyze_graph(trace, m, domain="bitset")
        )
        graph_seconds, reference = best_of(
            lambda m=model: analyze_graph(trace, m, domain="graph")
        )
        # The domains must agree exactly — same DAG, same scalars.
        assert bitset.persist_count == reference.persist_count
        assert bitset.critical_path == reference.critical_path
        assert bitset.mean_concurrency == reference.mean_concurrency
        assert (
            bitset.graph.level_histogram()
            == reference.graph.level_histogram()
        )
        assert bitset.graph.edge_count() == reference.graph.edge_count()
        bitset_total += bitset_seconds
        graph_total += graph_seconds
        per_model[model] = {
            "bitset_seconds": round(bitset_seconds, 4),
            "frozenset_seconds": round(graph_seconds, 4),
            "speedup": round(graph_seconds / bitset_seconds, 2),
        }
    speedup = graph_total / bitset_total
    return {
        "workload": {
            "design": "cwl",
            "threads": ANALYZE_THREADS,
            "inserts_per_thread": ANALYZE_INSERTS,
            "trace_events": events,
        },
        "simulation_events_per_second": round(events / sim_seconds),
        "analysis_events_per_second": round(
            len(MODELS) * events / bitset_total
        ),
        "per_model": per_model,
        "bitset_seconds": round(bitset_total, 4),
        "frozenset_seconds": round(graph_total, 4),
        "speedup": round(speedup, 2),
        "meets_5x_bar": speedup >= MIN_ANALYZE_SPEEDUP,
    }


def measure_check():
    """Prefix-sharing replay vs. full re-execution on publish-pair."""

    def run(replay):
        config = CheckConfig(replay=replay, **CHECK_CONFIG)
        return check_target(CHECK_TARGET, CHECK_THREADS, CHECK_OPS, config)

    share_seconds, share = best_of(lambda: run("share"))
    reexecute_seconds, reexecute = best_of(lambda: run("reexecute"))
    # Sharing must change nothing but the wall clock.
    assert sorted(share.distinct) == sorted(reexecute.distinct)
    assert share.stats.schedules == reexecute.stats.schedules
    assert share.stats.cuts_checked == reexecute.stats.cuts_checked
    assert share.stats.dags_analyzed == reexecute.stats.dags_analyzed
    speedup = reexecute_seconds / share_seconds
    return {
        "workload": {
            "target": CHECK_TARGET,
            "threads": CHECK_THREADS,
            "ops": CHECK_OPS,
            **{k: v for k, v in CHECK_CONFIG.items()},
        },
        "schedules": share.stats.schedules,
        "cuts_checked": share.stats.cuts_checked,
        "distinct_violations": len(share.distinct),
        "cuts_per_second": round(share.stats.cuts_checked / share_seconds),
        "share_seconds": round(share_seconds, 4),
        "reexecute_seconds": round(reexecute_seconds, 4),
        "speedup": round(speedup, 2),
        "meets_3x_bar": speedup >= MIN_CHECK_SPEEDUP,
    }


def record(out_path=None):
    """Measure both bars and write ``BENCH_engine.json``; returns it."""
    payload = {
        "analysis": measure_analysis(),
        "check": measure_check(),
    }
    if out_path is None:
        out_path = Path(__file__).parent / "out" / "BENCH_engine.json"
    out_path = Path(out_path)
    out_path.parent.mkdir(exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main():
    payload = record()
    analysis = payload["analysis"]
    check = payload["check"]
    print(
        f"analysis: bitset {analysis['bitset_seconds']}s vs frozenset "
        f"{analysis['frozenset_seconds']}s -> {analysis['speedup']}x "
        f"(bar >=5x: {analysis['meets_5x_bar']})"
    )
    print(
        f"check: share {check['share_seconds']}s vs reexecute "
        f"{check['reexecute_seconds']}s -> {check['speedup']}x "
        f"(bar >=3x: {check['meets_3x_bar']})"
    )
    if not (analysis["meets_5x_bar"] and check["meets_3x_bar"]):
        # Exit 3 distinguishes "bars unmet" (timing-noise territory on
        # shared runners) from genuine import/runtime errors (exit 1).
        print("performance bars not met")
        raise SystemExit(3)


if __name__ == "__main__":
    main()
