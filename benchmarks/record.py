"""Record the engine's hot-path performance to ``out/BENCH_engine.json``.

Standalone script (``PYTHONPATH=src python benchmarks/record.py``): it
measures the two tentpole optimisations against their reference
implementations and records the issue's acceptance bars:

* **Analysis kernel** — ``analyze`` of an 8-thread CWL trace under
  strict/epoch/strand with the packed-bitset persist-DAG domain vs. the
  frozenset reference domain.  Results must be identical; the combined
  speedup must be >= 5x.
* **Prefix-sharing replay** — ``repro check`` of the publish-pair
  target with snapshot/restore prefix sharing vs. full re-execution.
  Violation sets and stats must be identical; the wall-clock speedup
  must be >= 3x.

Each timing is the best of ``TRIALS`` runs (the quantities are tenths
of seconds, so single runs are scheduler-noise dominated).  The JSON
also records raw throughput: simulated events/second for trace
generation and analysis, and checked cuts/second for the checker.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.check import CheckConfig, check_target
from repro.core import AnalysisConfig, StreamingAnalyzer, analyze, analyze_graph
from repro.gpu.lanes import iter_lane_chunks
from repro.queue import run_insert_workload

#: Best-of-N timing trials per measured quantity.
TRIALS = 3

#: Analysis workload: the issue's 8-thread CWL trace.
ANALYZE_THREADS = 8
ANALYZE_INSERTS = 30
MODELS = ("strict", "epoch", "strand")

#: Checker workload: publish-pair, sized so execution (not analysis)
#: dominates — unreduced schedule tree, one relaxed model, bounded cuts.
CHECK_TARGET = "publish-pair"
CHECK_THREADS = 2
CHECK_OPS = 12
CHECK_CONFIG = dict(
    models=("epoch",),
    reduction="none",
    max_schedules=None,
    max_cuts_per_graph=64,
)

#: The issue's acceptance bars.
MIN_ANALYZE_SPEEDUP = 5.0
MIN_CHECK_SPEEDUP = 3.0

#: Streaming-engine bars: analyzer throughput on the million-event
#: GPU-lanes trace (chunked level-domain analysis, cache-line persist
#: granularity), and the end-to-end subprocess run's memory ceiling.
MIN_STREAMING_EVENTS_PER_SECOND = 2_500_000
STREAMING_RSS_CEILING_MB = 256

#: GPU-lanes geometry for the streaming benchmark: 1024 lanes x 109
#: records x 8 words (+ per-record barriers, hand-offs, scope commits)
#: is just over one million events.
LANES = 1024
LANE_RECORDS = 109
LANE_WORDS = 8
LANES_PER_SCOPE = 32
STREAM_CONFIG = AnalysisConfig(
    coalescing=True, persist_granularity=64, tracking_granularity=64
)


def best_of(fn, trials=TRIALS):
    """Return (best seconds, last result) over ``trials`` runs."""
    best = float("inf")
    result = None
    for _ in range(trials):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def measure_analysis():
    """Bitset vs. frozenset domain on the 8-thread CWL trace."""
    sim_seconds, workload = best_of(
        lambda: run_insert_workload(
            design="cwl",
            threads=ANALYZE_THREADS,
            inserts_per_thread=ANALYZE_INSERTS,
        )
    )
    trace = workload.trace
    events = len(trace.events)
    per_model = {}
    bitset_total = 0.0
    graph_total = 0.0
    for model in MODELS:
        bitset_seconds, bitset = best_of(
            lambda m=model: analyze_graph(trace, m, domain="bitset")
        )
        graph_seconds, reference = best_of(
            lambda m=model: analyze_graph(trace, m, domain="graph")
        )
        # The domains must agree exactly — same DAG, same scalars.
        assert bitset.persist_count == reference.persist_count
        assert bitset.critical_path == reference.critical_path
        assert bitset.mean_concurrency == reference.mean_concurrency
        assert (
            bitset.graph.level_histogram()
            == reference.graph.level_histogram()
        )
        assert bitset.graph.edge_count() == reference.graph.edge_count()
        bitset_total += bitset_seconds
        graph_total += graph_seconds
        per_model[model] = {
            "bitset_seconds": round(bitset_seconds, 4),
            "frozenset_seconds": round(graph_seconds, 4),
            "speedup": round(graph_seconds / bitset_seconds, 2),
        }
    speedup = graph_total / bitset_total
    return {
        "workload": {
            "design": "cwl",
            "threads": ANALYZE_THREADS,
            "inserts_per_thread": ANALYZE_INSERTS,
            "trace_events": events,
        },
        "simulation_events_per_second": round(events / sim_seconds),
        "analysis_events_per_second": round(
            len(MODELS) * events / bitset_total
        ),
        "per_model": per_model,
        "bitset_seconds": round(bitset_total, 4),
        "frozenset_seconds": round(graph_total, 4),
        "speedup": round(speedup, 2),
        "meets_5x_bar": speedup >= MIN_ANALYZE_SPEEDUP,
    }


def measure_check():
    """Prefix-sharing replay vs. full re-execution on publish-pair."""

    def run(replay):
        config = CheckConfig(replay=replay, **CHECK_CONFIG)
        return check_target(CHECK_TARGET, CHECK_THREADS, CHECK_OPS, config)

    share_seconds, share = best_of(lambda: run("share"))
    reexecute_seconds, reexecute = best_of(lambda: run("reexecute"))
    # Sharing must change nothing but the wall clock.
    assert sorted(share.distinct) == sorted(reexecute.distinct)
    assert share.stats.schedules == reexecute.stats.schedules
    assert share.stats.cuts_checked == reexecute.stats.cuts_checked
    assert share.stats.dags_analyzed == reexecute.stats.dags_analyzed
    speedup = reexecute_seconds / share_seconds
    return {
        "workload": {
            "target": CHECK_TARGET,
            "threads": CHECK_THREADS,
            "ops": CHECK_OPS,
            **{k: v for k, v in CHECK_CONFIG.items()},
        },
        "schedules": share.stats.schedules,
        "cuts_checked": share.stats.cuts_checked,
        "distinct_violations": len(share.distinct),
        "cuts_per_second": round(share.stats.cuts_checked / share_seconds),
        "share_seconds": round(share_seconds, 4),
        "reexecute_seconds": round(reexecute_seconds, 4),
        "speedup": round(speedup, 2),
        "meets_3x_bar": speedup >= MIN_CHECK_SPEEDUP,
    }


def _stream_lanes(model, lanes, chunks=None):
    """One chunked analysis pass; returns the result."""
    analyzer = StreamingAnalyzer(model, STREAM_CONFIG)
    source = chunks if chunks is not None else iter_lane_chunks(
        lanes, LANE_RECORDS, LANE_WORDS, LANES_PER_SCOPE
    )
    for chunk in source:
        analyzer.feed(chunk)
    return analyzer.finish()


def measure_streaming():
    """The streaming engine on million-event GPU-lanes traces.

    Three measurements:

    * **analysis throughput** (the 2.5M events/s bar) — chunked
      level-domain analysis of the pre-encoded 1M-event columnar trace,
      best of :data:`TRIALS`;
    * **lanes scaling** — the same per-lane workload at 64/256/1024
      lanes (events scale with lanes);
    * **streaming vs batch** — the chunked path against the per-event
      scalar path on the identical trace, results asserted equal.

    The end-to-end memory claim (trace generated, streamed, and
    analyzed without ever existing whole, under a pinned RSS ceiling,
    lockstep-equal to the per-event reference) is measured by running
    ``repro.gpu.bench`` as a fresh subprocess — RSS is a whole-process
    property, so the parent's own allocations must not pollute it.
    """
    scaling = {}
    headline = None
    for lanes in (64, 256, LANES):
        chunks = list(
            iter_lane_chunks(lanes, LANE_RECORDS, LANE_WORDS, LANES_PER_SCOPE)
        )
        seconds, result = best_of(lambda: _stream_lanes("epoch", lanes, chunks))
        scaling[str(lanes)] = {
            "events": result.events,
            "events_per_second": round(result.events / seconds),
            "critical_path": result.critical_path,
            "persist_count": result.persist_count,
        }
        if lanes == LANES:
            headline = scaling[str(lanes)]
        if lanes == 256:
            # Streaming vs batch: the chunked fast path against the
            # per-event scalar loop on the same trace, results equal.
            events = [event for chunk in chunks for event in chunk]
            batch_seconds, batch = best_of(
                lambda: analyze(events, "epoch", STREAM_CONFIG)
            )
            assert batch.critical_path == result.critical_path
            assert batch.persist_count == result.persist_count
            assert batch.coalesced == result.coalesced
            versus_batch = {
                "events": len(events),
                "streaming_seconds": round(seconds, 4),
                "batch_seconds": round(batch_seconds, 4),
                "speedup": round(batch_seconds / seconds, 2),
            }
        del chunks

    bench = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.gpu.bench",
            "--lanes", str(LANES),
            "--records", str(LANE_RECORDS),
            "--words", str(LANE_WORDS),
            "--scope", str(LANES_PER_SCOPE),
            "--models", "epoch",
            "--lockstep",
            "--max-rss-mb", str(STREAMING_RSS_CEILING_MB),
        ],
        capture_output=True,
        text=True,
        env={
            **os.environ,
            "PYTHONPATH": str(Path(__file__).resolve().parent.parent / "src"),
        },
    )
    if bench.returncode not in (0, 3):
        raise RuntimeError(
            f"repro.gpu.bench failed ({bench.returncode}):\n{bench.stderr}"
        )
    end_to_end = json.loads(bench.stdout)
    assert end_to_end["models"]["epoch"]["lockstep_equal"], (
        "streaming diverged from the per-event reference"
    )
    events_per_second = headline["events_per_second"]
    return {
        "workload": {
            "name": "gpu-lanes",
            "lanes": LANES,
            "records": LANE_RECORDS,
            "words": LANE_WORDS,
            "lanes_per_scope": LANES_PER_SCOPE,
            "persist_granularity": STREAM_CONFIG.persist_granularity,
            "tracking_granularity": STREAM_CONFIG.tracking_granularity,
            "domain": "level",
        },
        "analysis_events_per_second": events_per_second,
        "lanes_scaling": scaling,
        "streaming_vs_batch": versus_batch,
        "end_to_end": {
            "events": end_to_end["events"],
            "events_per_second": round(
                end_to_end["models"]["epoch"]["events_per_second"]
            ),
            "wall_seconds": round(
                end_to_end["models"]["epoch"]["wall_seconds"], 4
            ),
            "peak_rss_mb": round(end_to_end["peak_rss_kb"] / 1024, 1),
            "rss_ceiling_mb": STREAMING_RSS_CEILING_MB,
            "within_rss_ceiling": not end_to_end["failures"],
            "lockstep_equal": True,
        },
        "meets_2_5m_bar": events_per_second
        >= MIN_STREAMING_EVENTS_PER_SECOND,
    }


def record(out_path=None):
    """Measure all bars and write ``BENCH_engine.json``; returns it."""
    payload = {
        "analysis": measure_analysis(),
        "check": measure_check(),
        "streaming": measure_streaming(),
    }
    if out_path is None:
        out_path = Path(__file__).parent / "out" / "BENCH_engine.json"
    out_path = Path(out_path)
    out_path.parent.mkdir(exist_ok=True)
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def main():
    payload = record()
    analysis = payload["analysis"]
    check = payload["check"]
    print(
        f"analysis: bitset {analysis['bitset_seconds']}s vs frozenset "
        f"{analysis['frozenset_seconds']}s -> {analysis['speedup']}x "
        f"(bar >=5x: {analysis['meets_5x_bar']})"
    )
    print(
        f"check: share {check['share_seconds']}s vs reexecute "
        f"{check['reexecute_seconds']}s -> {check['speedup']}x "
        f"(bar >=3x: {check['meets_3x_bar']})"
    )
    streaming = payload["streaming"]
    end_to_end = streaming["end_to_end"]
    print(
        f"streaming: {streaming['analysis_events_per_second']} events/s "
        f"on {end_to_end['events']} gpu-lane events "
        f"(bar >=2.5M: {streaming['meets_2_5m_bar']}); end-to-end "
        f"{end_to_end['events_per_second']} events/s at "
        f"{end_to_end['peak_rss_mb']} MiB peak RSS "
        f"(ceiling {end_to_end['rss_ceiling_mb']} MiB: "
        f"{end_to_end['within_rss_ceiling']})"
    )
    bars_met = (
        analysis["meets_5x_bar"]
        and check["meets_3x_bar"]
        and streaming["meets_2_5m_bar"]
        and end_to_end["within_rss_ceiling"]
    )
    if not bars_met:
        # Exit 3 distinguishes "bars unmet" (timing-noise territory on
        # shared runners) from genuine import/runtime errors (exit 1).
        print("performance bars not met")
        raise SystemExit(3)


if __name__ == "__main__":
    main()
