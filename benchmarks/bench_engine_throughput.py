"""Engine performance: simulator and analyzer throughput.

Library-performance benchmarks (not paper artifacts): events/second for
trace generation, scalar analysis per model, and the volatile makespan
model.  Regressions here make every experiment slower, so they are
tracked with pytest-benchmark like any kernel.
"""

import pytest

from repro.check import CheckConfig, check_target
from repro.core import AnalysisConfig, StreamingAnalyzer, analyze, analyze_graph
from repro.gpu.lanes import iter_lane_chunks
from repro.harness import DEFAULT_COST_MODEL
from repro.queue import run_insert_workload


def test_simulation_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_insert_workload(
            design="cwl", threads=4, inserts_per_thread=50, seed=31
        ),
        rounds=3,
        iterations=1,
    )
    assert result.total_inserts == 200


def test_strict_analysis_throughput(runner, benchmark):
    trace = runner.workload("cwl", 8, False).trace
    result = benchmark(lambda: analyze(trace, "strict"))
    assert result.critical_path > 0


def test_strand_analysis_throughput(runner, benchmark):
    trace = runner.workload("cwl", 8, True).trace
    result = benchmark(lambda: analyze(trace, "strand"))
    assert result.critical_path > 0


def test_makespan_throughput(runner, benchmark):
    trace = runner.workload("2lc", 8, False).trace
    duration = benchmark(lambda: DEFAULT_COST_MODEL.makespan(trace))
    assert duration > 0


def test_bitset_graph_throughput(runner, benchmark):
    """The packed-bitset DAG domain — the analysis fast path."""
    trace = runner.workload("cwl", 8, False).trace
    result = benchmark(lambda: analyze_graph(trace, "epoch", domain="bitset"))
    assert result.critical_path > 0


def test_frozenset_graph_throughput(runner, benchmark):
    """The frozenset reference domain, for the speedup ratio."""
    trace = runner.workload("cwl", 8, False).trace
    result = benchmark(lambda: analyze_graph(trace, "epoch", domain="graph"))
    assert result.critical_path > 0


#: Streaming benchmark sizing: a 64-lane scoped gpu-lanes trace
#: (~63k events) at cache-line granularity — big enough that per-event
#: overhead dominates, small enough for pytest-benchmark rounds.
_STREAM_LANES = 64
_STREAM_CONFIG = AnalysisConfig(
    coalescing=True, persist_granularity=64, tracking_granularity=64
)


@pytest.fixture(scope="module")
def lane_chunks():
    return list(iter_lane_chunks(_STREAM_LANES, 109, 8, 32))


def _stream(chunks):
    analyzer = StreamingAnalyzer("epoch", _STREAM_CONFIG)
    for chunk in chunks:
        analyzer.feed(chunk)
    return analyzer.finish()


def test_streaming_columnar_throughput(lane_chunks, benchmark):
    """Chunked columnar analysis — the streaming fast path."""
    result = benchmark(lambda: _stream(lane_chunks))
    assert result.critical_path > 0


def test_batch_event_throughput(lane_chunks, benchmark):
    """One-shot analyze() over materialized events, for the ratio."""
    events = [event for chunk in lane_chunks for event in chunk]
    result = benchmark(lambda: analyze(events, "epoch", _STREAM_CONFIG))
    assert result.critical_path > 0


#: Replay benchmark sizing: unreduced publish-pair tree, one model,
#: bounded cuts — execution cost dominates (see benchmarks/record.py).
_REPLAY_CHECK = dict(
    models=("epoch",),
    reduction="none",
    max_schedules=None,
    max_cuts_per_graph=64,
)


def test_check_share_replay_throughput(benchmark):
    """Checker with snapshot/restore prefix sharing on backtrack."""
    result = benchmark.pedantic(
        lambda: check_target(
            "publish-pair", 2, 8, CheckConfig(replay="share", **_REPLAY_CHECK)
        ),
        rounds=3,
        iterations=1,
    )
    assert not result.ok


def test_check_reexecute_replay_throughput(benchmark):
    """Checker re-executing every schedule from step 0 (the baseline)."""
    result = benchmark.pedantic(
        lambda: check_target(
            "publish-pair",
            2,
            8,
            CheckConfig(replay="reexecute", **_REPLAY_CHECK),
        ),
        rounds=3,
        iterations=1,
    )
    assert not result.ok
