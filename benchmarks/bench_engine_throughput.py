"""Engine performance: simulator and analyzer throughput.

Library-performance benchmarks (not paper artifacts): events/second for
trace generation, scalar analysis per model, and the volatile makespan
model.  Regressions here make every experiment slower, so they are
tracked with pytest-benchmark like any kernel.
"""

from repro.core import analyze
from repro.harness import DEFAULT_COST_MODEL
from repro.queue import run_insert_workload


def test_simulation_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_insert_workload(
            design="cwl", threads=4, inserts_per_thread=50, seed=31
        ),
        rounds=3,
        iterations=1,
    )
    assert result.total_inserts == 200


def test_strict_analysis_throughput(runner, benchmark):
    trace = runner.workload("cwl", 8, False).trace
    result = benchmark(lambda: analyze(trace, "strict"))
    assert result.critical_path > 0


def test_strand_analysis_throughput(runner, benchmark):
    trace = runner.workload("cwl", 8, True).trace
    result = benchmark(lambda: analyze(trace, "strand"))
    assert result.critical_path > 0


def test_makespan_throughput(runner, benchmark):
    trace = runner.workload("2lc", 8, False).trace
    duration = benchmark(lambda: DEFAULT_COST_MODEL.makespan(trace))
    assert duration > 0
