"""Engine performance: simulator and analyzer throughput.

Library-performance benchmarks (not paper artifacts): events/second for
trace generation, scalar analysis per model, and the volatile makespan
model.  Regressions here make every experiment slower, so they are
tracked with pytest-benchmark like any kernel.
"""

from repro.check import CheckConfig, check_target
from repro.core import analyze, analyze_graph
from repro.harness import DEFAULT_COST_MODEL
from repro.queue import run_insert_workload


def test_simulation_throughput(benchmark):
    result = benchmark.pedantic(
        lambda: run_insert_workload(
            design="cwl", threads=4, inserts_per_thread=50, seed=31
        ),
        rounds=3,
        iterations=1,
    )
    assert result.total_inserts == 200


def test_strict_analysis_throughput(runner, benchmark):
    trace = runner.workload("cwl", 8, False).trace
    result = benchmark(lambda: analyze(trace, "strict"))
    assert result.critical_path > 0


def test_strand_analysis_throughput(runner, benchmark):
    trace = runner.workload("cwl", 8, True).trace
    result = benchmark(lambda: analyze(trace, "strand"))
    assert result.critical_path > 0


def test_makespan_throughput(runner, benchmark):
    trace = runner.workload("2lc", 8, False).trace
    duration = benchmark(lambda: DEFAULT_COST_MODEL.makespan(trace))
    assert duration > 0


def test_bitset_graph_throughput(runner, benchmark):
    """The packed-bitset DAG domain — the analysis fast path."""
    trace = runner.workload("cwl", 8, False).trace
    result = benchmark(lambda: analyze_graph(trace, "epoch", domain="bitset"))
    assert result.critical_path > 0


def test_frozenset_graph_throughput(runner, benchmark):
    """The frozenset reference domain, for the speedup ratio."""
    trace = runner.workload("cwl", 8, False).trace
    result = benchmark(lambda: analyze_graph(trace, "epoch", domain="graph"))
    assert result.critical_path > 0


#: Replay benchmark sizing: unreduced publish-pair tree, one model,
#: bounded cuts — execution cost dominates (see benchmarks/record.py).
_REPLAY_CHECK = dict(
    models=("epoch",),
    reduction="none",
    max_schedules=None,
    max_cuts_per_graph=64,
)


def test_check_share_replay_throughput(benchmark):
    """Checker with snapshot/restore prefix sharing on backtrack."""
    result = benchmark.pedantic(
        lambda: check_target(
            "publish-pair", 2, 8, CheckConfig(replay="share", **_REPLAY_CHECK)
        ),
        rounds=3,
        iterations=1,
    )
    assert not result.ok


def test_check_reexecute_replay_throughput(benchmark):
    """Checker re-executing every schedule from step 0 (the baseline)."""
    result = benchmark.pedantic(
        lambda: check_target(
            "publish-pair",
            2,
            8,
            CheckConfig(replay="reexecute", **_REPLAY_CHECK),
        ),
        rounds=3,
        iterations=1,
    )
    assert not result.ok
