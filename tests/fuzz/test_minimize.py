"""Tests for counterexample minimization."""

import pytest

from repro.core import is_consistent_cut
from repro.errors import FuzzError
from repro.fuzz import (
    CampaignConfig,
    CaseSpec,
    Corpus,
    execute_spec,
    minimize_finding,
    minimize_findings,
    replay_case,
    run_campaign,
    run_case,
    shrink_cut,
    shrink_workload,
)
from repro.fuzz.campaign import Finding

from tests.fuzz.test_campaign import FAITHFUL_2LC_SPEC, RACY_MINIFS_SPEC


def finding_for(spec):
    """Build a Finding from a spec known to violate."""
    outcome = run_case(spec, stop_at_first=True)
    assert outcome.violation_count > 0
    violation = outcome.violations[0]
    return Finding(
        spec=spec,
        cut=violation.cut,
        error=violation.error,
        choices=outcome.choices,
    )


class TestShrinkWorkload:
    def test_never_grows_and_still_reproduces(self):
        shrunk = shrink_workload(FAITHFUL_2LC_SPEC)
        assert shrunk.threads <= FAITHFUL_2LC_SPEC.threads
        assert shrunk.ops <= FAITHFUL_2LC_SPEC.ops
        assert run_case(shrunk, stop_at_first=True).violation_count > 0

    def test_respects_target_floors(self):
        shrunk = shrink_workload(FAITHFUL_2LC_SPEC)
        assert shrunk.threads >= 1
        assert shrunk.ops >= 2  # queue targets' ops floor

    def test_non_reproducing_spec_rejected(self):
        clean = CaseSpec.from_payload(
            {**FAITHFUL_2LC_SPEC.describe(), "target": "queue-2lc"}
        )
        with pytest.raises(FuzzError):
            shrink_workload(clean)


class TestShrinkCut:
    def test_cut_is_consistent_and_violating(self):
        execution = execute_spec(FAITHFUL_2LC_SPEC)
        cut, error = shrink_cut(execution)
        assert error
        assert is_consistent_cut(execution.graph, cut)
        # The shrunk cut must itself still violate.
        from repro.core import image_at_cut
        from repro.errors import RecoveryError

        image = image_at_cut(
            execution.graph, cut, execution.run.base_image, check=True
        )
        with pytest.raises(RecoveryError):
            execution.run.check(image)

    def test_smaller_than_the_full_persist_set(self):
        execution = execute_spec(FAITHFUL_2LC_SPEC)
        cut, _ = shrink_cut(execution)
        assert len(cut) < len(execution.graph.nodes)


class TestMinimizeFinding:
    @pytest.mark.parametrize(
        "spec", [FAITHFUL_2LC_SPEC, RACY_MINIFS_SPEC], ids=["2lc", "minifs"]
    )
    def test_produces_replayable_minimized_case(self, spec):
        outcome = minimize_finding(finding_for(spec))
        case = outcome.case
        assert case.minimized
        assert case.threads <= spec.threads
        assert case.ops <= spec.ops
        assert case.choices
        assert outcome.stats.runs > 0
        replay = replay_case(case)
        assert replay.reproduced
        assert replay.detail == case.error


class TestMinimizeFindings:
    def test_writes_one_corpus_entry_per_model(self, tmp_path):
        result = run_campaign(
            CampaignConfig(target="queue-2lc-faithful", budget=24, seed=0)
        )
        corpus = Corpus(tmp_path)
        minimized = minimize_findings(result, corpus, limit=4)
        assert minimized
        models = [outcome.case.model for outcome in minimized]
        assert len(models) == len(set(models))  # deduped by model
        assert len(corpus.entries()) == len(minimized)
        for path, replay in corpus.replay_all():
            assert replay.reproduced, f"{path} went stale"

    def test_limit_honored(self):
        result = run_campaign(
            CampaignConfig(target="minifs-racy", budget=8, seed=0)
        )
        minimized = minimize_findings(result, corpus=None, limit=1)
        assert len(minimized) == 1
