"""Tests for the fuzz-target registry."""

import pytest

from repro.core import analyze_graph, full_cut, image_at_cut
from repro.errors import FuzzError
from repro.fuzz import TARGETS, make_target
from repro.sim import make_scheduler


class TestRegistry:
    def test_known_broken_variants(self):
        broken = {name for name, t in TARGETS.items() if t.known_broken}
        assert broken == {
            "queue-2lc-faithful",
            "minifs-racy",
            "publish-pair",
            "publish-clwb",
            "publish-clflushopt-nofence",
            "log-repair-buggy",
        }

    def test_make_target_unknown_rejected(self):
        with pytest.raises(FuzzError):
            make_target("btrfs")

    def test_make_target_returns_registered(self):
        assert make_target("kv") is TARGETS["kv"]

    @pytest.mark.parametrize("name", sorted(TARGETS))
    def test_ranges_are_sane(self, name):
        target = TARGETS[name]
        assert 1 <= target.thread_range[0] <= target.thread_range[1]
        assert 1 <= target.ops_range[0] <= target.ops_range[1]


class TestBuild:
    @pytest.mark.parametrize("name", sorted(TARGETS))
    def test_builds_and_base_image_is_clean(self, name):
        """Nothing persisted yet is always a legal recovery state."""
        target = TARGETS[name]
        run = target.build(
            target.thread_range[0],
            target.ops_range[0],
            make_scheduler("random", 1),
        )
        assert len(run.trace) > 0
        run.check(run.base_image)

    @pytest.mark.parametrize("name", sorted(TARGETS))
    def test_full_cut_recovers_even_for_broken_variants(self, name):
        """With every persist applied there is no failure to expose."""
        target = TARGETS[name]
        run = target.build(2, target.ops_range[0], make_scheduler("random", 2))
        graph = analyze_graph(run.trace, "epoch").graph
        image = image_at_cut(graph, full_cut(graph), run.base_image)
        run.check(image)

    def test_bad_sizes_rejected(self):
        with pytest.raises(FuzzError):
            make_target("kv").build(0, 2, make_scheduler("random"))
        with pytest.raises(FuzzError):
            make_target("kv").build(2, 0, make_scheduler("random"))

    def test_same_schedule_same_trace(self):
        """A target build is deterministic given the scheduler."""
        target = make_target("log")
        a = target.build(2, 3, make_scheduler("random", 9))
        b = target.build(2, 3, make_scheduler("random", 9))
        assert list(a.trace) == list(b.trace)
