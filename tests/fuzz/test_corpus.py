"""Tests for the repro corpus and deterministic replay."""

import json

import pytest

from repro.errors import FuzzError
from repro.fuzz import Corpus, ReproCase, minimize_finding, replay_case

from tests.fuzz.test_campaign import FAITHFUL_2LC_SPEC
from tests.fuzz.test_minimize import finding_for


@pytest.fixture(scope="module")
def minimized_case():
    """One minimized, replayable case (expensive: built once per module)."""
    return minimize_finding(finding_for(FAITHFUL_2LC_SPEC)).case


class TestReproCase:
    def test_round_trips_through_payload(self, minimized_case):
        payload = minimized_case.describe()
        assert ReproCase.from_payload(payload) == minimized_case

    def test_key_is_stable_and_content_addressed(self, minimized_case):
        assert minimized_case.key() == minimized_case.key()
        other = ReproCase.from_payload(
            {**minimized_case.describe(), "sched_seed": 99}
        )
        assert other.key() != minimized_case.key()

    def test_malformed_payload_rejected(self):
        with pytest.raises(FuzzError):
            ReproCase.from_payload({"target": "kv"})

    def test_wrong_version_rejected(self, minimized_case):
        payload = {**minimized_case.describe(), "version": 999}
        with pytest.raises(FuzzError):
            ReproCase.from_payload(payload)


class TestCorpus:
    def test_add_load_round_trip(self, tmp_path, minimized_case):
        corpus = Corpus(tmp_path)
        path = corpus.add(minimized_case)
        assert path.name.endswith(".repro.json")
        assert corpus.load(path) == minimized_case

    def test_add_is_idempotent(self, tmp_path, minimized_case):
        corpus = Corpus(tmp_path)
        assert corpus.add(minimized_case) == corpus.add(minimized_case)
        assert len(corpus.entries()) == 1

    def test_entries_sorted(self, tmp_path, minimized_case):
        corpus = Corpus(tmp_path)
        corpus.add(minimized_case)
        variant = ReproCase.from_payload(
            {**minimized_case.describe(), "error": "another"}
        )
        corpus.add(variant)
        entries = corpus.entries()
        assert entries == sorted(entries)
        assert len(entries) == 2

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "broken.repro.json"
        path.write_text("{not json")
        with pytest.raises(FuzzError):
            Corpus(tmp_path).load(path)

    def test_byte_truncated_file_raises_fuzz_error(
        self, tmp_path, minimized_case
    ):
        """Truncation mid-token must never leak a raw JSONDecodeError."""
        corpus = Corpus(tmp_path)
        path = corpus.add(minimized_case)
        data = path.read_bytes()
        for cut in (1, len(data) // 3, len(data) // 2):
            path.write_bytes(data[:cut])
            with pytest.raises(FuzzError, match="cannot read repro file"):
                corpus.load(path)

    def test_non_utf8_file_raises_fuzz_error(self, tmp_path):
        path = tmp_path / "binary.repro.json"
        path.write_bytes(b"\xff\xfe\x00garbage\x80")
        with pytest.raises(FuzzError, match="cannot read repro file"):
            Corpus(tmp_path).load(path)

    def test_non_object_payload_rejected(self, tmp_path):
        path = tmp_path / "list.repro.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(FuzzError, match="JSON object"):
            Corpus(tmp_path).load(path)

    def test_load_or_quarantine_renames_and_warns(
        self, tmp_path, minimized_case
    ):
        corpus = Corpus(tmp_path)
        good = corpus.add(minimized_case)
        bad = tmp_path / "half.repro.json"
        bad.write_bytes(good.read_bytes()[:20])
        with pytest.warns(RuntimeWarning, match="quarantin"):
            assert corpus.load_or_quarantine(bad) is None
        assert not bad.exists()
        assert bad.with_name(bad.name + ".quarantined").exists()
        # The good entry is untouched and still loads.
        assert corpus.load_or_quarantine(good) == minimized_case

    def test_replay_all_skips_quarantined_entries(
        self, tmp_path, minimized_case
    ):
        corpus = Corpus(tmp_path)
        good = corpus.add(minimized_case)
        bad = tmp_path / "torn.repro.json"
        bad.write_bytes(b"\x80\x81\x82")
        with pytest.warns(RuntimeWarning):
            results = corpus.replay_all()
        assert [path for path, _ in results] == [good]
        assert results[0][1].reproduced

    def test_written_file_is_valid_json(self, tmp_path, minimized_case):
        corpus = Corpus(tmp_path)
        path = corpus.add(minimized_case)
        payload = json.loads(path.read_text())
        assert payload["target"] == minimized_case.target


class TestReplay:
    def test_minimized_case_reproduces(self, minimized_case):
        replay = replay_case(minimized_case)
        assert replay.reproduced
        assert replay.detail

    def test_divergent_choices_reported_stale(self, minimized_case):
        stale = ReproCase.from_payload(
            {**minimized_case.describe(), "choices": [999999]}
        )
        replay = replay_case(stale)
        assert not replay.reproduced
        assert "stale" in replay.detail

    def test_inconsistent_cut_reported_stale(self, minimized_case):
        stale = ReproCase.from_payload(
            {**minimized_case.describe(), "cut": [10_000_000]}
        )
        replay = replay_case(stale)
        assert not replay.reproduced
        assert "stale" in replay.detail

    def test_fixed_target_does_not_reproduce(self, minimized_case):
        """The same schedule and cut against the fixed 2LC must be clean."""
        fixed = ReproCase.from_payload(
            {**minimized_case.describe(), "target": "queue-2lc"}
        )
        replay = replay_case(fixed)
        assert not replay.reproduced
