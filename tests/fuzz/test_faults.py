"""Fault-injection campaigns: detect-and-degrade recovery end to end.

The contract under test (ISSUE: device-level fault injection):

* hardened targets (per-record checksums) must never return silently
  wrong recovered state under any injected fault — every fault is
  masked or detected-and-quarantined;
* unhardened targets document their undetectable exposure (counted,
  never a campaign failure);
* a serialized fault plan replays to the identical
  :class:`~repro.inject.report.RecoveryReport`;
* checkpointed campaigns resume to byte-identical summaries.
"""

import json

import pytest

from repro.errors import FuzzError
from repro.fuzz import (
    CampaignConfig,
    CaseSpec,
    Corpus,
    ReproCase,
    TARGETS,
    replay_case,
    run_campaign,
    run_case,
    sample_specs,
)
from repro.fuzz.campaign import _campaign_digest, _load_checkpoint
from repro.inject import FAULT_KINDS, FaultPlan

#: Small per-target sizes so the full matrix stays fast.
SMALL = {"budget": 3, "seed": 7, "cut_samples": 12}

#: Hardened targets that are correct by construction: zero silent
#: corruption AND zero violations of any kind under faults.
CLEAN_HARDENED = [
    name
    for name, target in sorted(TARGETS.items())
    if target.hardened and not target.known_broken
]


def small_config(target, kind):
    return CampaignConfig(target=target, faults=(kind,), **SMALL)


class TestSpecFaults:
    def test_spec_payload_round_trips_plan(self):
        plan = FaultPlan.for_kind("torn", seed=9)
        spec = CaseSpec(
            target="kv", threads=2, ops=2, sched="random", sched_seed=1,
            model="epoch", cuts="sample", cut_seed=2, faults=plan.to_json(),
        )
        rebuilt = CaseSpec.from_payload(spec.describe())
        assert rebuilt == spec
        assert rebuilt.plan() == plan

    def test_payload_without_faults_field_still_loads(self):
        payload = CaseSpec(
            target="kv", threads=2, ops=2, sched="random", sched_seed=1,
            model="epoch", cuts="sample", cut_seed=2,
        ).describe()
        del payload["faults"]
        assert CaseSpec.from_payload(payload).faults is None

    def test_clean_spec_has_no_plan(self):
        spec = sample_specs(CampaignConfig(target="kv", budget=1))[0]
        assert spec.faults is None and spec.plan() is None

    def test_fault_axis_assigns_plans_of_requested_kinds(self):
        config = CampaignConfig(
            target="kv", budget=12, seed=0, faults=("torn", "corrupt")
        )
        kinds = set()
        for spec in sample_specs(config):
            plan = spec.plan()
            assert plan is not None
            assert len(plan.kinds) == 1
            kinds.update(plan.kinds)
        assert kinds == {"torn", "corrupt"}

    def test_fault_axis_does_not_perturb_clean_sampling(self):
        clean = sample_specs(CampaignConfig(target="kv", budget=6, seed=3))
        faulted = sample_specs(
            CampaignConfig(target="kv", budget=6, seed=3, faults=("torn",))
        )
        for before, after in zip(clean, faulted):
            assert before == CaseSpec.from_payload(
                {**after.describe(), "faults": None}
            )

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(FuzzError):
            CampaignConfig(target="kv", faults=("bitrot",)).validate()


class TestHardenedTargets:
    @pytest.mark.parametrize("target", CLEAN_HARDENED)
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_no_silent_corruption_under_any_fault_kind(self, target, kind):
        result = run_campaign(small_config(target, kind))
        assert result.silent_corruptions == 0
        assert result.violations == 0
        assert result.fault_undetected == 0
        # Every faulted image is accounted for: masked or detected.
        if result.fault_images:
            assert result.fault_masked + result.fault_detected > 0

    def test_torn_writes_are_detected_not_just_masked(self):
        # The CI smoke job's property: a hardened target's checksums
        # must actually catch seeded torn writes, not coincide with
        # them being harmless.
        result = run_campaign(small_config("log", "torn"))
        assert result.fault_images > 0
        assert result.fault_detected > 0


class TestUnhardenedTargets:
    @pytest.mark.parametrize(
        "target",
        [n for n, t in sorted(TARGETS.items()) if not t.hardened
         and not t.known_broken],
    )
    def test_exposure_is_documented_never_silent(self, target):
        result = run_campaign(small_config(target, "corrupt"))
        # Unhardened targets may mis-recover (counted as undetected
        # exposure) but never produce the silent-corruption verdict,
        # and genuine ordering violations must not appear.
        assert result.silent_corruptions == 0
        assert result.violations == 0

    def test_queue_payload_corruption_is_the_documented_exposure(self):
        result = run_campaign(
            CampaignConfig(
                target="queue-2lc", budget=4, seed=1, faults=("corrupt",)
            )
        )
        assert result.fault_images > 0
        assert result.silent_corruptions == 0


class TestKnownBrokenTargets:
    @pytest.mark.parametrize(
        "target", [n for n, t in sorted(TARGETS.items()) if t.known_broken]
    )
    def test_fault_campaigns_still_classify_cleanly(self, target):
        result = run_campaign(small_config(target, "torn"))
        # Genuine ordering bugs may fire (clean image fails too); the
        # accounting must stay coherent regardless.
        assert result.fault_masked + result.fault_undetected <= (
            result.fault_images
        )
        for outcome in result.outcomes:
            assert outcome.silent_violation_count <= outcome.violation_count

    def test_genuine_violations_strip_fault_plans_from_findings(self):
        config = CampaignConfig(
            target="queue-2lc-faithful", budget=12, seed=0,
            faults=("dropped",),
        )
        result = run_campaign(config)
        if result.violations:
            for finding in result.findings:
                if not any(
                    v.silent
                    for o in result.outcomes
                    if o.spec == finding.spec
                    for v in o.violations
                ):
                    assert finding.spec.faults is None


class TestReplayDeterminism:
    def build_fault_case(self, kind):
        spec = sample_specs(
            CampaignConfig(target="kv", budget=1, seed=5, faults=(kind,))
        )[0]
        outcome = run_case(spec)
        assert outcome.cuts_checked > 0
        # The full cut is always consistent, so replay it.
        from repro.fuzz import execute_spec

        execution = execute_spec(spec)
        cut = tuple(
            sorted(node.pid for node in execution.graph.nodes)
        )
        return ReproCase(
            target=spec.target,
            threads=spec.threads,
            ops=spec.ops,
            sched=spec.sched,
            sched_seed=spec.sched_seed,
            model=spec.model,
            cut=cut,
            choices=execution.choices,
            error="",
            faults=spec.faults,
        )

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_serialized_plan_replays_to_identical_report(self, kind, tmp_path):
        case = self.build_fault_case(kind)
        corpus = Corpus(tmp_path)
        path = corpus.add(case)
        loaded = corpus.load(path)
        assert loaded == case
        first = replay_case(loaded)
        second = replay_case(loaded)
        assert first.reproduced == second.reproduced
        assert first.detail == second.detail
        if first.report is not None:
            assert first.report == second.report
            assert first.report.quarantined == second.report.quarantined

    def test_corpus_payload_without_faults_loads_as_clean(self, tmp_path):
        case = self.build_fault_case("torn")
        payload = case.describe()
        del payload["faults"]
        assert ReproCase.from_payload(payload).faults is None


class TestCheckpointing:
    CONFIG = dict(target="counter", budget=6, seed=2, cut_samples=8)

    def test_resume_is_byte_identical(self, tmp_path):
        config = CampaignConfig(**self.CONFIG)
        straight = run_campaign(config).summary()
        ckpt = tmp_path / "ckpt"
        first = run_campaign(
            config, checkpoint_dir=ckpt, checkpoint_every=2
        ).summary()
        assert first == straight
        path = ckpt / "campaign.checkpoint.json"
        assert path.exists()
        # Drop half the completed cases to simulate an interrupt.
        payload = json.loads(path.read_text())
        assert len(payload["outcomes"]) == self.CONFIG["budget"]
        payload["outcomes"] = payload["outcomes"][:3]
        path.write_text(json.dumps(payload))
        resumed = run_campaign(
            config, checkpoint_dir=ckpt, checkpoint_every=2
        ).summary()
        assert resumed == straight
        # The checkpoint healed back to the full campaign.
        healed = json.loads(path.read_text())
        assert len(healed["outcomes"]) == self.CONFIG["budget"]

    def test_resume_skips_completed_cases(self, tmp_path):
        config = CampaignConfig(**self.CONFIG)
        ckpt = tmp_path / "ckpt"
        run_campaign(config, checkpoint_dir=ckpt)
        digest = _campaign_digest(config)
        path = ckpt / "campaign.checkpoint.json"
        completed = _load_checkpoint(path, digest)
        assert sorted(completed) == list(range(self.CONFIG["budget"]))

    def test_different_config_ignores_checkpoint(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        run_campaign(CampaignConfig(**self.CONFIG), checkpoint_dir=ckpt)
        other = CampaignConfig(**{**self.CONFIG, "seed": 3})
        with pytest.warns(RuntimeWarning, match="different campaign"):
            result = run_campaign(other, checkpoint_dir=ckpt)
        assert result.cases == self.CONFIG["budget"]

    def test_parallelism_does_not_change_checkpoint_identity(self):
        serial = CampaignConfig(**self.CONFIG, jobs=1)
        parallel = CampaignConfig(
            **self.CONFIG, jobs=4, task_timeout=30.0, task_retries=2
        )
        assert _campaign_digest(serial) == _campaign_digest(parallel)

    def test_corrupt_checkpoint_quarantined_and_rerun(self, tmp_path):
        config = CampaignConfig(**self.CONFIG)
        ckpt = tmp_path / "ckpt"
        ckpt.mkdir()
        path = ckpt / "campaign.checkpoint.json"
        path.write_bytes(b'{"version": 1, "config": "abc", "outc')
        with pytest.warns(RuntimeWarning, match="quarantined"):
            result = run_campaign(config, checkpoint_dir=ckpt)
        assert result.cases == self.CONFIG["budget"]
        assert (ckpt / "campaign.checkpoint.json.quarantined").exists()
