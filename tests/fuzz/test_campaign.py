"""Tests for the campaign engine, including bug rediscovery."""

import pytest

from repro.core import is_consistent_cut
from repro.errors import FuzzError
from repro.fuzz import (
    CUT_FAMILIES,
    CampaignConfig,
    CaseSpec,
    execute_spec,
    run_campaign,
    run_case,
    sample_specs,
)
from repro.sim import SCHEDULER_KINDS

#: Known-violating specs (pinned from seed-0 campaign sampling) — the
#: printed 2LC under strand persistency and racy MiniFS under epoch.
FAITHFUL_2LC_SPEC = CaseSpec(
    target="queue-2lc-faithful",
    threads=3,
    ops=3,
    sched="strided2",
    sched_seed=2124,
    model="strand",
    cuts="minimal",
    cut_seed=0,
)
RACY_MINIFS_SPEC = CaseSpec(
    target="minifs-racy",
    threads=3,
    ops=3,
    sched="strided2",
    sched_seed=66150,
    model="epoch",
    cuts="extension",
    cut_seed=18316,
)


class TestCaseSpec:
    def test_round_trips_through_payload(self):
        spec = FAITHFUL_2LC_SPEC
        assert CaseSpec.from_payload(spec.describe()) == spec

    def test_malformed_payload_rejected(self):
        with pytest.raises(FuzzError):
            CaseSpec.from_payload({"target": "kv"})


class TestSampling:
    def test_deterministic_for_seed(self):
        config = CampaignConfig(target="kv", budget=20, seed=3)
        assert sample_specs(config) == sample_specs(config)

    def test_respects_target_and_config_ranges(self):
        config = CampaignConfig(
            target="kv",
            budget=50,
            seed=1,
            models=("epoch",),
            schedulers=("random", "strided2"),
        )
        target_threads = (1, 4)
        for spec in sample_specs(config):
            assert spec.target == "kv"
            assert target_threads[0] <= spec.threads <= target_threads[1]
            assert spec.model == "epoch"
            assert spec.sched in ("random", "strided2")
            assert spec.cuts in CUT_FAMILIES

    def test_bad_configs_rejected(self):
        with pytest.raises(FuzzError):
            sample_specs(CampaignConfig(target="kv", budget=0))
        with pytest.raises(FuzzError):
            sample_specs(CampaignConfig(target="kv", models=()))
        with pytest.raises(FuzzError):
            sample_specs(CampaignConfig(target="nope"))


class TestRunCase:
    def test_known_bad_spec_violates(self):
        outcome = run_case(FAITHFUL_2LC_SPEC)
        assert outcome.violation_count > 0
        assert outcome.choices  # recorded schedule travels with findings
        for violation in outcome.violations:
            assert violation.error

    def test_violation_cuts_are_consistent(self):
        outcome = run_case(FAITHFUL_2LC_SPEC)
        execution = execute_spec(FAITHFUL_2LC_SPEC)
        for violation in outcome.violations:
            assert is_consistent_cut(execution.graph, violation.cut)

    def test_fixed_variant_of_same_case_is_clean(self):
        spec = CaseSpec.from_payload(
            {**FAITHFUL_2LC_SPEC.describe(), "target": "queue-2lc"}
        )
        outcome = run_case(spec)
        assert outcome.violation_count == 0
        assert outcome.choices is None

    def test_stop_at_first_short_circuits(self):
        full = run_case(FAITHFUL_2LC_SPEC)
        early = run_case(FAITHFUL_2LC_SPEC, stop_at_first=True)
        assert early.violation_count == 1
        assert early.cuts_checked <= full.cuts_checked

    def test_unknown_cut_family_rejected(self):
        spec = CaseSpec.from_payload(
            {**FAITHFUL_2LC_SPEC.describe(), "cuts": "antichain"}
        )
        with pytest.raises(FuzzError):
            run_case(spec)


class TestCampaign:
    def test_rediscovers_printed_2lc_bug(self):
        """The fuzzer must find the paper-faithful 2LC hole from scratch."""
        result = run_campaign(
            CampaignConfig(target="queue-2lc-faithful", budget=24, seed=0)
        )
        assert result.violations > 0
        assert result.findings
        finding = result.findings[0]
        assert finding.choices and finding.cut and finding.error

    def test_rediscovers_minifs_lock_race(self):
        """The fuzzer must find the barriers-around-locks omission."""
        result = run_campaign(
            CampaignConfig(target="minifs-racy", budget=8, seed=0)
        )
        assert result.violations > 0

    @pytest.mark.parametrize("target", ["queue-2lc", "minifs"])
    def test_fixed_variants_stay_clean(self, target):
        result = run_campaign(
            CampaignConfig(target=target, budget=12, seed=0)
        )
        assert result.violations == 0
        assert result.findings == []
        assert result.cases == 12
        assert result.cuts_checked > 0

    def test_parallel_matches_serial(self):
        serial = run_campaign(
            CampaignConfig(target="counter", budget=8, seed=2, jobs=1)
        )
        parallel = run_campaign(
            CampaignConfig(target="counter", budget=8, seed=2, jobs=2)
        )
        assert [o.spec for o in serial.outcomes] == [
            o.spec for o in parallel.outcomes
        ]
        assert [o.cuts_checked for o in serial.outcomes] == [
            o.cuts_checked for o in parallel.outcomes
        ]
        assert serial.violations == parallel.violations == 0

    def test_summary_mentions_target_and_counts(self):
        result = run_campaign(
            CampaignConfig(target="counter", budget=4, seed=0)
        )
        summary = result.summary()
        assert "counter" in summary
        assert "violation" in summary
