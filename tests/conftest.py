"""Shared fixtures: session-scoped workloads reused across test modules."""

import pytest

from repro.harness import ExperimentRunner
from repro.queue import run_insert_workload


@pytest.fixture(scope="session")
def cwl_1t():
    """Single-thread Copy While Locked, race-free barriers."""
    return run_insert_workload(
        design="cwl", threads=1, inserts_per_thread=60, seed=11
    )


@pytest.fixture(scope="session")
def cwl_4t():
    """Four-thread Copy While Locked, race-free barriers."""
    return run_insert_workload(
        design="cwl", threads=4, inserts_per_thread=15, seed=12
    )


@pytest.fixture(scope="session")
def cwl_4t_racing():
    """Four-thread Copy While Locked, racing epochs variant."""
    return run_insert_workload(
        design="cwl", threads=4, inserts_per_thread=15, racing=True, seed=13
    )


@pytest.fixture(scope="session")
def tlc_4t():
    """Four-thread Two-Lock Concurrent (with the recovery-fix barrier)."""
    return run_insert_workload(
        design="2lc", threads=4, inserts_per_thread=15, seed=14
    )


@pytest.fixture(scope="session")
def shared_runner():
    """Small ExperimentRunner shared by harness tests."""
    return ExperimentRunner(inserts_per_thread=40, base_seed=3)
