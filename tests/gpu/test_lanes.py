"""GPU-lanes workload: scoped commits, synthetic traces, and the bench."""

import json

import pytest

from repro.core import AnalysisConfig, StreamingAnalyzer, analyze
from repro.errors import RecoveryError, SimulationError
from repro.fuzz import make_target
from repro.gpu.bench import main as bench_main
from repro.gpu.bench import records_for_events
from repro.gpu.lanes import (
    COMMIT_MAGIC,
    build_lane_machine,
    iter_lane_chunks,
    lane_event_count,
    lane_record_word,
)
from repro.memory import layout
from repro.memory.nvram import NvramImage
from repro.sim import RandomScheduler, RoundRobinScheduler


def _final_image(machine):
    return NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )


class TestWorkloadInvariant:
    def test_completed_run_satisfies_check(self):
        machine, workload = build_lane_machine(
            4, 3, words=2, lanes_per_scope=2,
            scheduler=RandomScheduler(seed=1),
        )
        machine.run()
        workload.check(_final_image(machine))

    def test_corrupted_record_under_durable_commit_raises(self):
        machine, workload = build_lane_machine(
            4, 2, words=2, lanes_per_scope=2,
            scheduler=RandomScheduler(seed=2),
        )
        machine.run()
        image = _final_image(machine)
        image.apply_raw(
            workload.record_addr(1, 0, 1), bytes(layout.WORD_SIZE)
        )
        with pytest.raises(RecoveryError):
            workload.check(image)

    def test_uncommitted_scope_is_unconstrained(self):
        machine, workload = build_lane_machine(
            4, 2, words=2, lanes_per_scope=2,
            scheduler=RandomScheduler(seed=3),
        )
        machine.run()
        image = _final_image(machine)
        # Clear scope 0's commit word, then corrupt one of its records:
        # without the durable commit there is no promise to violate.
        image.apply_raw(workload.commit_addr(0), bytes(layout.WORD_SIZE))
        image.apply_raw(
            workload.record_addr(0, 0, 0), bytes(layout.WORD_SIZE)
        )
        workload.check(image)

    def test_fuzz_target_registered_and_correct(self):
        target = make_target("gpu-lanes")
        assert not target.known_broken
        run = target.build(3, 2, RandomScheduler(seed=4))
        run.check(run.base_image)  # blank commits: vacuously fine

    def test_bulk_stepped_run_matches_fine_grained(self):
        fine, workload = build_lane_machine(
            6, 3, words=2, lanes_per_scope=3,
            scheduler=RoundRobinScheduler(),
        )
        fine.run()
        bulk, _ = build_lane_machine(
            6, 3, words=2, lanes_per_scope=3,
            scheduler=RoundRobinScheduler(), columnar=True,
        )
        bulk.run(bulk_quantum=32)
        workload.check(_final_image(bulk))
        for model in ("epoch", "strand"):
            a = analyze(fine.trace, model)
            b = analyze(bulk.trace, model)
            assert (a.critical_path, a.persist_count) == (
                b.critical_path,
                b.persist_count,
            )

    def test_bad_geometry_rejected(self):
        with pytest.raises(SimulationError):
            build_lane_machine(0, 1)
        with pytest.raises(SimulationError):
            build_lane_machine(1, 1, words=9)


class TestSyntheticTrace:
    def test_event_count_matches_generator(self):
        for lanes, records, words, scope in (
            (1, 1, 1, 1),
            (6, 3, 2, 2),
            (5, 2, 8, 32),
            (7, 4, 3, 3),
        ):
            count = lane_event_count(lanes, records, words, scope)
            total = sum(
                len(chunk)
                for chunk in iter_lane_chunks(
                    lanes, records, words, scope, chunk_events=13
                )
            )
            assert total == count

    def test_chunk_seqs_are_dense(self):
        chunks = list(iter_lane_chunks(4, 2, 2, 2, chunk_events=7))
        expected = 0
        for chunk in chunks:
            assert chunk.base_seq == expected
            expected += len(chunk)

    def test_commit_follows_barrier_per_scope(self):
        events = [
            event
            for chunk in iter_lane_chunks(4, 1, 2, 2, chunk_events=1000)
            for event in chunk
        ]
        commits = [
            event for event in events if event.value == COMMIT_MAGIC
        ]
        assert len(commits) == 2
        for commit in commits:
            prior = [
                event
                for event in events
                if event.thread == commit.thread and event.seq < commit.seq
            ]
            assert prior[-1].kind.value == "persist_barrier"

    def test_streamed_analysis_locksteps_reference(self):
        config = AnalysisConfig(
            persist_granularity=64, tracking_granularity=64
        )
        for model in ("epoch", "strict", "strand"):
            chunked = StreamingAnalyzer(model, config)
            for chunk in iter_lane_chunks(8, 4, 4, 4, chunk_events=31):
                chunked.feed(chunk)
            scalar = StreamingAnalyzer(model, config)
            for chunk in iter_lane_chunks(8, 4, 4, 4, chunk_events=31):
                scalar.feed(iter(chunk))
            a = chunked.finish()
            b = scalar.finish()
            assert (
                a.critical_path,
                a.persist_count,
                a.persist_stores,
                a.coalesced,
                a.level_histogram,
            ) == (
                b.critical_path,
                b.persist_count,
                b.persist_stores,
                b.coalesced,
                b.level_histogram,
            )

    def test_epoch_critical_path_is_records_plus_commit(self):
        """Lockstep lanes: one level per record epoch, one for commits."""
        result = analyze(
            [
                event
                for chunk in iter_lane_chunks(4, 5, 2, 2)
                for event in chunk
            ],
            "epoch",
            AnalysisConfig(persist_granularity=64, tracking_granularity=64),
        )
        assert result.critical_path == 6

    def test_deterministic_values(self):
        assert lane_record_word(0, 0, 0) == lane_record_word(0, 0, 0)
        assert lane_record_word(1, 2, 3) != lane_record_word(1, 2, 4)


class TestBenchCli:
    def test_records_for_events_reaches_target(self):
        records = records_for_events(8, 4, 4, 1000)
        assert lane_event_count(8, records, 4, 4) >= 1000
        assert lane_event_count(8, records - 1, 4, 4) < 1000

    def test_small_bench_run_reports_and_passes(self, capsys):
        status = bench_main(
            [
                "--lanes", "8",
                "--records", "6",
                "--words", "4",
                "--scope", "4",
                "--chunk-events", "64",
                "--models", "epoch",
                "--lockstep",
            ]
        )
        assert status == 0
        report = json.loads(capsys.readouterr().out)
        assert report["events"] == lane_event_count(8, 6, 4, 4)
        assert report["models"]["epoch"]["lockstep_equal"] is True
        assert report["failures"] == []
        assert report["peak_rss_kb"] > 0

    def test_floor_violation_exits_nonzero(self, capsys):
        status = bench_main(
            [
                "--lanes", "4",
                "--records", "2",
                "--models", "epoch",
                "--min-events-per-sec", "1e15",
            ]
        )
        assert status == 3
        report = json.loads(capsys.readouterr().out)
        assert report["failures"]
