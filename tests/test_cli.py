"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture
def trace_path(tmp_path):
    path = tmp_path / "trace.jsonl"
    code = main(
        [
            "run",
            "--design",
            "cwl",
            "--threads",
            "2",
            "--inserts",
            "6",
            "--seed",
            "3",
            "-o",
            str(path),
        ]
    )
    assert code == 0
    return path


class TestRun:
    def test_writes_trace(self, trace_path, capsys):
        assert trace_path.exists()

    def test_racing_flag(self, tmp_path, capsys):
        path = tmp_path / "racing.jsonl"
        assert (
            main(
                [
                    "run", "--design", "cwl", "--racing", "--inserts", "4",
                    "-o", str(path),
                ]
            )
            == 0
        )
        assert "persists" in capsys.readouterr().out

    def test_bad_output_path_is_error_not_crash(self, capsys):
        code = main(
            ["run", "--inserts", "2", "-o", "/nonexistent/dir/x.jsonl"]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestAnalyze:
    def test_all_models_by_default(self, trace_path, capsys):
        assert main(["analyze", str(trace_path)]) == 0
        out = capsys.readouterr().out
        for model in ("strict", "epoch", "bpfs", "strand"):
            assert model in out
        assert "CP/op" in out  # insert marks found

    def test_single_model_with_options(self, trace_path, capsys):
        code = main(
            [
                "analyze",
                str(trace_path),
                "--model",
                "epoch",
                "--persist-granularity",
                "64",
                "--no-coalescing",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "epoch" in out and "strict" not in out

    def test_missing_trace_file(self, capsys):
        assert main(["analyze", "/no/such/trace.jsonl"]) == 2

    def test_stream_matches_batch_output(self, trace_path, capsys):
        assert main(["analyze", str(trace_path)]) == 0
        batch = capsys.readouterr().out
        assert (
            main(
                [
                    "analyze",
                    str(trace_path),
                    "--stream",
                    "--chunk-size",
                    "32",
                ]
            )
            == 0
        )
        streamed = capsys.readouterr().out
        assert streamed == batch

    def test_stream_with_domain(self, trace_path, capsys):
        code = main(
            [
                "analyze",
                str(trace_path),
                "--stream",
                "--domain",
                "bitset",
                "--model",
                "epoch",
            ]
        )
        assert code == 0
        assert "epoch" in capsys.readouterr().out

    def test_stream_rejects_wear(self, trace_path, capsys):
        code = main(["analyze", str(trace_path), "--stream", "--wear"])
        assert code == 2
        assert "--wear" in capsys.readouterr().err


class TestRaces:
    def test_race_free_trace_passes(self, trace_path, capsys):
        assert main(["races", str(trace_path)]) == 0
        assert "no persist-epoch races" in capsys.readouterr().out

    def test_racing_trace_fails(self, tmp_path, capsys):
        path = tmp_path / "racing.jsonl"
        main(
            [
                "run", "--design", "cwl", "--threads", "2", "--inserts", "6",
                "--racing", "-o", str(path),
            ]
        )
        assert main(["races", str(path)]) == 1
        assert "race" in capsys.readouterr().out


class TestDot:
    def test_writes_dot_file(self, trace_path, tmp_path, capsys):
        out = tmp_path / "graph.dot"
        assert (
            main(["dot", str(trace_path), "--model", "strand", "-o", str(out)])
            == 0
        )
        text = out.read_text()
        assert text.startswith("digraph persists")
        assert "->" in text

    def test_prints_to_stdout_without_output(self, trace_path, capsys):
        assert main(["dot", str(trace_path)]) == 0
        assert "digraph" in capsys.readouterr().out


class TestInject:
    def test_correct_design_passes(self, capsys):
        code = main(
            [
                "inject", "--design", "cwl", "--threads", "2", "--inserts",
                "5", "--samples", "10", "--minimal-step", "10",
            ]
        )
        assert code == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_paper_faithful_tlc_fails(self, capsys):
        # Seed chosen so the printed-algorithm hole manifests.
        code = main(
            [
                "inject", "--design", "2lc", "--threads", "4", "--inserts",
                "8", "--paper-faithful", "--samples", "0", "--seed", "0",
            ]
        )
        assert code == 1
        assert "violation" in capsys.readouterr().out


class TestSelfcheck:
    def test_selfcheck_passes(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "selfcheck: PASS" in out
        assert "[FAIL]" not in out


class TestAnalyzeWear:
    def test_wear_columns(self, trace_path, capsys):
        assert main(["analyze", str(trace_path), "--wear"]) == 0
        out = capsys.readouterr().out
        assert "max_wear" in out and "write_cut" in out


class TestTableAndFigures:
    def test_table1_small(self, capsys):
        assert main(["table1", "--inserts", "20", "--threads", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "Copy While Locked" in out and "Strand" in out

    def test_figures_writes_csvs(self, tmp_path, capsys):
        out_dir = tmp_path / "figs"
        assert (
            main(["figures", "--inserts", "20", "--out", str(out_dir)]) == 0
        )
        names = {p.name for p in out_dir.iterdir()}
        assert names == {
            "fig3_latency.csv",
            "fig3_latency.svg",
            "fig4_persist_granularity.csv",
            "fig4_persist_granularity.svg",
            "fig5_false_sharing.csv",
            "fig5_false_sharing.svg",
        }


class TestFuzz:
    def test_run_finds_and_minimizes_known_bug(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        code = main(
            [
                "fuzz", "run", "--target", "queue-2lc-faithful",
                "--budget", "24", "--seed", "0",
                "--corpus-dir", str(corpus_dir),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "violation" in out
        assert "minimized" in out
        assert list(corpus_dir.glob("*.repro.json"))

    def test_run_fixed_target_is_clean(self, tmp_path, capsys):
        code = main(
            [
                "fuzz", "run", "--target", "queue-2lc",
                "--budget", "8", "--seed", "0",
                "--corpus-dir", str(tmp_path / "corpus"),
            ]
        )
        assert code == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_replay_reproduces_corpus(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        assert (
            main(
                [
                    "fuzz", "run", "--target", "minifs-racy",
                    "--budget", "8", "--seed", "0",
                    "--minimize-limit", "1",
                    "--corpus-dir", str(corpus_dir),
                ]
            )
            == 1
        )
        capsys.readouterr()
        code = main(["fuzz", "replay", "--corpus-dir", str(corpus_dir)])
        out = capsys.readouterr().out
        assert code == 0
        assert "reproduced" in out and "0 stale" in out

    def test_replay_empty_corpus_is_error(self, tmp_path, capsys):
        code = main(["fuzz", "replay", "--corpus-dir", str(tmp_path / "c")])
        assert code == 2
        assert "no repro files" in capsys.readouterr().out

    def test_minimize_rewrites_entry(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        assert (
            main(
                [
                    "fuzz", "run", "--target", "queue-2lc-faithful",
                    "--budget", "24", "--seed", "0",
                    "--minimize-limit", "1",
                    "--corpus-dir", str(corpus_dir),
                ]
            )
            == 1
        )
        capsys.readouterr()
        entry = sorted(corpus_dir.glob("*.repro.json"))[0]
        code = main(
            ["fuzz", "minimize", str(entry), "--corpus-dir", str(corpus_dir)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "minimized" in out

    def test_unknown_target_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["fuzz", "run", "--target", "ext4"])


class TestCheck:
    def test_clean_target_verifies_and_exits_zero(self, capsys):
        code = main(
            ["check", "--target", "counter", "--threads", "2", "--ops", "1",
             "--no-export"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "schedules explored" in out
        assert "0 distinct" in out

    def test_known_broken_target_exits_one_and_exports(self, tmp_path, capsys):
        corpus_dir = tmp_path / "corpus"
        code = main(
            ["check", "--target", "queue-2lc-faithful",
             "--threads", "2", "--ops", "1", "--stop-at-first",
             "--corpus-dir", str(corpus_dir)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "violation" in out
        assert "exported" in out
        exported = list(corpus_dir.glob("*.repro.json"))
        assert exported
        capsys.readouterr()
        assert main(["fuzz", "replay", "--corpus-dir", str(corpus_dir)]) == 0
        assert "0 stale" in capsys.readouterr().out

    def test_schedule_overrun_exits_two(self, capsys):
        code = main(
            ["check", "--target", "queue-cwl", "--threads", "2", "--ops", "1",
             "--reduction", "none", "--max-schedules", "2", "--no-export"]
        )
        err = capsys.readouterr().err
        assert code == 2
        assert "interleavings" in err

    def test_stats_prints_engine_counters(self, capsys):
        code = main(
            ["check", "--target", "counter", "--threads", "2", "--ops", "1",
             "--stats", "--no-export"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "engine nodes" in captured.err

    def test_sharded_check_matches_solo_verdict(self, capsys):
        code = main(
            ["check", "--target", "counter", "--threads", "2", "--ops", "1",
             "--jobs", "2", "--shard-depth", "1", "--stats", "--no-export"]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "0 distinct" in captured.out
        assert "shard (0,)" in captured.err

    def test_unknown_target_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["check", "--target", "ext4"])


class TestLitmus:
    def test_list_names_programs(self, capsys):
        assert main(["litmus", "list"]) == 0
        out = capsys.readouterr().out
        assert "mp-clflushopt" in out
        assert "sb-partial-forward" in out

    def test_show_prints_threads(self, capsys):
        assert main(["litmus", "show", "mp-clflushopt"]) == 0
        out = capsys.readouterr().out
        assert "clflushopt" in out and "thread 1" in out

    def test_run_single_program_differential(self, capsys):
        code = main(
            [
                "litmus", "run", "--program", "mp-clflushopt",
                "--model", "px86", "--model", "dpox86",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "mp-clflushopt" in out
        assert "disagreement pairs=1" in out

    def test_run_writes_report(self, tmp_path, capsys):
        import json

        path = tmp_path / "litmus.json"
        code = main(
            [
                "litmus", "run", "--program", "mp-barrier",
                "--model", "epoch", "--model", "px86",
                "--cross-domains", "-o", str(path),
            ]
        )
        assert code == 0
        report = json.loads(path.read_text())
        assert report["summary"]["programs"] == 1
        program, = report["programs"]
        assert program["name"] == "mp-barrier"
        assert program["disagreements"]
        assert program["domain_mismatches"] == []

    def test_unknown_program_rejected(self, capsys):
        assert main(["litmus", "run", "--program", "nope"]) == 2
        assert "unknown litmus program" in capsys.readouterr().err
