"""Semantics tests for the volatile insert list (2LC hole prevention)."""

from repro.queue.insert_list import VolatileInsertList
from repro.sim import Machine, RandomScheduler, RoundRobinScheduler, make_lock


def make_list(machine=None):
    machine = machine or Machine(scheduler=RoundRobinScheduler())
    lock = make_lock(machine, "mcs")
    return machine, lock, VolatileInsertList(machine, lock)


def run_script(machine, script):
    """Run a single thread through append/remove operations."""
    results = []

    def body(ctx):
        nodes = {}
        for op, key, value in script:
            if op == "append":
                nodes[key] = yield from insert_list.append(ctx, value)
            else:
                outcome = yield from insert_list.remove(ctx, nodes[key])
                results.append(outcome)

    machine, lock, insert_list = make_list(machine)
    machine.spawn(body)
    machine.run()
    return results


class TestSingleThreadSemantics:
    def test_in_order_completion(self):
        results = run_script(
            None,
            [
                ("append", "a", 128),
                ("append", "b", 256),
                ("remove", "a", None),
                ("remove", "b", None),
            ],
        )
        assert results == [(True, 128), (True, 256)]

    def test_out_of_order_completion_defers_head(self):
        results = run_script(
            None,
            [
                ("append", "a", 128),
                ("append", "b", 256),
                ("remove", "b", None),  # not oldest: no head update
                ("remove", "a", None),  # oldest: covers both
            ],
        )
        assert results == [(False, 0), (True, 256)]

    def test_contiguous_prefix_only(self):
        results = run_script(
            None,
            [
                ("append", "a", 128),
                ("append", "b", 256),
                ("append", "c", 384),
                ("remove", "c", None),
                ("remove", "a", None),  # b incomplete: stop at 128
                ("remove", "b", None),  # now covers through c
            ],
        )
        assert results == [(False, 0), (True, 128), (True, 384)]


class TestConcurrent:
    def test_head_values_cover_all_inserts(self):
        """Concurrent appenders/removers: the max returned head equals the
        total reserved space and heads are monotone."""
        machine = Machine(scheduler=RandomScheduler(seed=21))
        lock = make_lock(machine, "mcs")
        insert_list = VolatileInsertList(machine, lock)
        headv = machine.volatile_heap.malloc(8)
        machine.memory.write(headv, 8, 0)
        update_lock = make_lock(machine, "mcs")
        heads = []

        def body(ctx, n):
            for _ in range(n):
                yield from lock.acquire(ctx)
                start = yield from ctx.load(headv)
                yield from ctx.store(headv, start + 128)
                node = yield from insert_list.append(ctx, start + 128)
                yield from lock.release(ctx)
                yield from update_lock.acquire(ctx)
                oldest, new_head = yield from insert_list.remove(ctx, node)
                if oldest:
                    heads.append(new_head)
                yield from update_lock.release(ctx)

        for _ in range(4):
            machine.spawn(body, 10)
        machine.run()
        assert heads == sorted(heads)
        assert heads[-1] == 4 * 10 * 128

    def test_nodes_freed(self):
        """All list nodes are freed once every insert completes."""
        machine = Machine(scheduler=RandomScheduler(seed=8))
        lock = make_lock(machine, "mcs")
        insert_list = VolatileInsertList(machine, lock)
        update_lock = make_lock(machine, "mcs")
        baseline = len(machine.volatile_heap.live_allocations)

        def body(ctx, n):
            for i in range(n):
                yield from lock.acquire(ctx)
                node = yield from insert_list.append(ctx, i)
                yield from lock.release(ctx)
                yield from update_lock.acquire(ctx)
                yield from insert_list.remove(ctx, node)
                yield from update_lock.release(ctx)

        for _ in range(3):
            machine.spawn(body, 8)
        machine.run()
        # MCS qnodes (one per thread per lock) remain; list nodes do not.
        live = len(machine.volatile_heap.live_allocations)
        assert live <= baseline + 2 * 3  # two locks x three threads
