"""Unit tests for the queue memory layout."""

import pytest

from repro.errors import ReproError
from repro.queue import allocate_queue, record_size
from repro.queue.layout import (
    DATA_OFFSET,
    QUEUE_MAGIC,
    QueueHandle,
)
from repro.sim import Machine


class TestRecordSize:
    def test_default_alignment_pads_to_64(self):
        assert record_size(100, 64) == 128  # 8 + 100 -> 128

    def test_exact_fit(self):
        assert record_size(56, 64) == 64

    def test_word_alignment(self):
        assert record_size(3, 8) == 16  # 8 + 3 -> 16


class TestHandle:
    def test_field_addresses_are_padded_apart(self):
        handle = QueueHandle(base=0x8000_0000, capacity=4096, insert_alignment=64)
        assert handle.head_addr - handle.base == 64
        assert handle.tail_addr - handle.base == 128
        assert handle.data_base - handle.base == DATA_OFFSET
        assert handle.total_size == DATA_OFFSET + 4096

    def test_data_pieces_no_wrap(self):
        handle = QueueHandle(0x8000_0000, 1024, 64)
        pieces = handle.data_pieces(100, 50)
        assert pieces == [(handle.data_base + 100, 0, 50)]

    def test_data_pieces_wrap(self):
        handle = QueueHandle(0x8000_0000, 1024, 64)
        pieces = handle.data_pieces(1000, 100)
        assert pieces == [
            (handle.data_base + 1000, 0, 24),
            (handle.data_base, 24, 76),
        ]

    def test_data_pieces_modular_offset(self):
        handle = QueueHandle(0x8000_0000, 1024, 64)
        assert handle.data_pieces(1024 * 5 + 8, 16) == [
            (handle.data_base + 8, 0, 16)
        ]

    def test_oversized_range_rejected(self):
        handle = QueueHandle(0x8000_0000, 1024, 64)
        with pytest.raises(ReproError):
            handle.data_pieces(0, 2048)

    def test_negative_size_rejected(self):
        handle = QueueHandle(0x8000_0000, 1024, 64)
        with pytest.raises(ReproError):
            handle.data_pieces(0, -1)


class TestAllocateQueue:
    def test_header_initialised(self):
        machine = Machine()
        handle = allocate_queue(machine, 4096)
        memory = machine.memory
        assert memory.read(handle.magic_addr, 8) == QUEUE_MAGIC
        assert memory.read(handle.capacity_addr, 8) == 4096
        assert memory.read(handle.alignment_addr, 8) == 64
        assert memory.read(handle.head_addr, 8) == 0
        assert memory.read(handle.tail_addr, 8) == 0
        assert memory.is_persistent(handle.base)

    def test_volatile_placement(self):
        machine = Machine()
        handle = allocate_queue(machine, 4096, persistent=False)
        assert not machine.memory.is_persistent(handle.base)

    def test_bad_capacity_rejected(self):
        machine = Machine()
        with pytest.raises(ReproError):
            allocate_queue(machine, 0)
        with pytest.raises(ReproError):
            allocate_queue(machine, 100)  # not a word multiple

    def test_bad_alignment_rejected(self):
        machine = Machine()
        with pytest.raises(ReproError):
            allocate_queue(machine, 4096, insert_alignment=24)
