"""Unit tests for queue recovery parsing and verification."""

import pytest

from repro.errors import RecoveryError
from repro.memory import NvramImage
from repro.queue import (
    allocate_queue,
    padded_entry,
    read_geometry,
    recover_entries,
    run_insert_workload,
    verify_recovery,
)
from repro.queue.layout import HEAD_OFFSET, LENGTH_FIELD_SIZE, TAIL_OFFSET
from repro.sim import Machine


def image_of(machine):
    return NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )


@pytest.fixture
def finished_run():
    return run_insert_workload(
        design="cwl", threads=1, inserts_per_thread=5, seed=20
    )


class TestGeometry:
    def test_reads_valid_header(self, finished_run):
        handle = read_geometry(
            image_of(finished_run.machine), finished_run.queue.base
        )
        assert handle == finished_run.queue

    def test_blank_image_rejected(self):
        image = NvramImage(0x8000_0000, 4096)
        with pytest.raises(RecoveryError):
            read_geometry(image, 0x8000_0000)

    def test_corrupt_capacity_rejected(self, finished_run):
        image = image_of(finished_run.machine)
        base = finished_run.queue.base
        image.apply_persist(base + 8, (0).to_bytes(8, "little"))
        with pytest.raises(RecoveryError):
            read_geometry(image, base)

    def test_corrupt_alignment_rejected(self, finished_run):
        image = image_of(finished_run.machine)
        base = finished_run.queue.base
        image.apply_persist(base + 16, (24).to_bytes(8, "little"))
        with pytest.raises(RecoveryError):
            read_geometry(image, base)


class TestRecoverEntries:
    def test_full_state_recovers_everything(self, finished_run):
        _, entries = recover_entries(
            image_of(finished_run.machine), finished_run.queue.base
        )
        assert [e.payload for e in entries] == [
            padded_entry(0, i, 100) for i in range(5)
        ]

    def test_empty_queue_recovers_nothing(self):
        machine = Machine()
        queue = allocate_queue(machine, 4096)
        _, entries = recover_entries(image_of(machine), queue.base)
        assert entries == []

    def test_tail_ahead_of_head_rejected(self, finished_run):
        image = image_of(finished_run.machine)
        base = finished_run.queue.base
        image.apply_persist(
            base + TAIL_OFFSET, (10_000).to_bytes(8, "little")
        )
        with pytest.raises(RecoveryError):
            recover_entries(image, base)

    def test_live_range_beyond_capacity_rejected(self, finished_run):
        image = image_of(finished_run.machine)
        base = finished_run.queue.base
        huge = finished_run.queue.capacity + 4096
        image.apply_persist(base + HEAD_OFFSET, huge.to_bytes(8, "little"))
        with pytest.raises(RecoveryError):
            recover_entries(image, base)

    def test_zero_length_frame_rejected(self, finished_run):
        image = image_of(finished_run.machine)
        handle = finished_run.queue
        # Zero out the first entry's length field while head still covers it.
        image.apply_persist(
            handle.data_base, (0).to_bytes(LENGTH_FIELD_SIZE, "little")
        )
        with pytest.raises(RecoveryError):
            recover_entries(image, handle.base)

    def test_frame_running_past_head_rejected(self, finished_run):
        image = image_of(finished_run.machine)
        handle = finished_run.queue
        image.apply_persist(
            handle.data_base, (100_000).to_bytes(LENGTH_FIELD_SIZE, "little")
        )
        with pytest.raises(RecoveryError):
            recover_entries(image, handle.base)


class TestVerifyRecovery:
    def test_matching_state_verifies(self, finished_run):
        entries = verify_recovery(
            image_of(finished_run.machine),
            finished_run.queue.base,
            finished_run.expected,
        )
        assert len(entries) == 5

    def test_payload_mismatch_detected(self, finished_run):
        image = image_of(finished_run.machine)
        handle = finished_run.queue
        # Corrupt one covered payload word.
        image.apply_persist(
            handle.data_base + LENGTH_FIELD_SIZE,
            b"\xff" * 8,
        )
        with pytest.raises(RecoveryError, match="hole"):
            verify_recovery(image, handle.base, finished_run.expected)

    def test_unknown_offset_detected(self, finished_run):
        image = image_of(finished_run.machine)
        expected = dict(finished_run.expected)
        del expected[0]
        with pytest.raises(RecoveryError, match="unknown offset"):
            verify_recovery(image, finished_run.queue.base, expected)
