"""Tests for the workload driver."""

import pytest

from repro.errors import ReproError
from repro.queue import WorkloadConfig, padded_entry, run_insert_workload
from repro.queue.workload import DESIGNS


class TestConfig:
    def test_defaults_valid(self):
        WorkloadConfig().validate()

    def test_unknown_design_rejected(self):
        with pytest.raises(ReproError):
            WorkloadConfig(design="lockfree").validate()

    def test_nonpositive_sizes_rejected(self):
        with pytest.raises(ReproError):
            WorkloadConfig(threads=0).validate()
        with pytest.raises(ReproError):
            WorkloadConfig(inserts_per_thread=0).validate()
        with pytest.raises(ReproError):
            WorkloadConfig(entry_size=8).validate()

    def test_required_capacity(self):
        config = WorkloadConfig(threads=2, inserts_per_thread=3, entry_size=100)
        assert config.required_capacity() == 6 * 128

    def test_describe_is_json_friendly(self):
        meta = WorkloadConfig().describe()
        assert meta["design"] == "cwl"
        assert all(
            isinstance(v, (str, int, bool)) for v in meta.values()
        )

    def test_registry_has_both_designs(self):
        assert set(DESIGNS) == {"cwl", "2lc"}

    def test_config_and_overrides_mutually_exclusive(self):
        with pytest.raises(ReproError):
            run_insert_workload(WorkloadConfig(), design="cwl")


class TestResults:
    def test_expected_matches_total(self):
        result = run_insert_workload(
            design="cwl", threads=3, inserts_per_thread=4, seed=2
        )
        assert result.total_inserts == 12
        assert len(result.expected) == 12
        assert result.events_per_insert > 10

    def test_expected_payloads_are_thread_tagged(self):
        result = run_insert_workload(
            design="cwl", threads=2, inserts_per_thread=3, seed=3
        )
        by_thread = {0: 0, 1: 0}
        for payload in result.expected.values():
            thread = int.from_bytes(payload[:8], "little")
            by_thread[thread] += 1
        assert by_thread == {0: 3, 1: 3}

    def test_meta_recorded_in_trace(self):
        result = run_insert_workload(
            design="2lc", threads=2, inserts_per_thread=2, seed=4
        )
        assert result.trace.meta["design"] == "2lc"
        assert result.trace.meta["threads"] == 2

    def test_same_seed_reproduces_trace(self):
        first = run_insert_workload(
            design="cwl", threads=2, inserts_per_thread=5, seed=6
        )
        second = run_insert_workload(
            design="cwl", threads=2, inserts_per_thread=5, seed=6
        )
        assert [
            (e.thread, e.kind, e.addr, e.value) for e in first.trace
        ] == [(e.thread, e.kind, e.addr, e.value) for e in second.trace]

    def test_entry_sizes_respected(self):
        result = run_insert_workload(
            design="cwl", threads=1, inserts_per_thread=2, entry_size=40, seed=7
        )
        for payload in result.expected.values():
            assert len(payload) == 40

    def test_base_image_is_pre_workload(self):
        result = run_insert_workload(
            design="cwl", threads=1, inserts_per_thread=2, seed=8
        )
        # Header initialised, head still zero, data segment untouched.
        assert result.base_image.read(result.queue.head_addr, 8) == 0
        assert result.base_image.read(result.queue.capacity_addr, 8) > 0
        assert result.base_image.read(result.queue.data_base, 8) == 0


class TestPaddedEntry:
    def test_deterministic(self):
        assert padded_entry(1, 2, 100) == padded_entry(1, 2, 100)

    def test_distinct_across_threads_and_indices(self):
        entries = {
            padded_entry(thread, index, 64)
            for thread in range(3)
            for index in range(3)
        }
        assert len(entries) == 9

    def test_minimum_size_enforced(self):
        with pytest.raises(ValueError):
            padded_entry(0, 0, 8)
