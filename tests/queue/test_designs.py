"""Functional tests for the CWL and 2LC queue designs."""

import pytest

from repro.memory import NvramImage
from repro.queue import (
    QueueFullError,
    allocate_queue,
    make_cwl,
    make_tlc,
    padded_entry,
    recover_entries,
    run_insert_workload,
)
from repro.sim import Machine, RandomScheduler
from repro.trace import EventKind, validate

DESIGN_FACTORIES = {"cwl": make_cwl, "2lc": make_tlc}


def final_image(machine):
    return NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )


class TestInsertBasics:
    @pytest.mark.parametrize("design", sorted(DESIGN_FACTORIES))
    def test_entries_recoverable_after_run(self, design):
        result = run_insert_workload(
            design=design, threads=2, inserts_per_thread=10, seed=5
        )
        validate(result.trace)
        _, entries = recover_entries(final_image(result.machine), result.queue.base)
        assert len(entries) == 20
        recovered = {entry.offset: entry.payload for entry in entries}
        assert recovered == result.expected

    @pytest.mark.parametrize("design", sorted(DESIGN_FACTORIES))
    def test_offsets_are_dense_and_aligned(self, design):
        result = run_insert_workload(
            design=design, threads=3, inserts_per_thread=7, seed=6
        )
        offsets = sorted(result.expected)
        assert offsets == [128 * i for i in range(21)]

    @pytest.mark.parametrize("design", sorted(DESIGN_FACTORIES))
    def test_single_thread_insert_order_is_offset_order(self, design):
        result = run_insert_workload(
            design=design, threads=1, inserts_per_thread=10, seed=7
        )
        payloads = [result.expected[128 * i] for i in range(10)]
        assert payloads == [padded_entry(0, i, 100) for i in range(10)]

    @pytest.mark.parametrize("design", sorted(DESIGN_FACTORIES))
    def test_queue_full_raises(self, design):
        machine = Machine(scheduler=RandomScheduler(seed=1))
        queue = allocate_queue(machine, 256)  # room for two 128B records
        dut = DESIGN_FACTORIES[design](machine, queue)

        def body(ctx):
            for i in range(3):
                yield from dut.insert(ctx, padded_entry(0, i, 100))

        machine.spawn(body)
        with pytest.raises(QueueFullError):
            machine.run()


class TestAnnotations:
    def test_cwl_barrier_count_race_free(self):
        result = run_insert_workload(
            design="cwl", threads=1, inserts_per_thread=5, seed=8
        )
        stats = result.trace.stats()
        # Lines 3, 5, 8, 11, 13: five barriers per insert.
        assert stats.persist_barriers == 5 * 5
        assert stats.new_strands == 5

    def test_cwl_racing_removes_two_barriers(self):
        result = run_insert_workload(
            design="cwl", threads=1, inserts_per_thread=5, racing=True, seed=8
        )
        assert result.trace.stats().persist_barriers == 3 * 5

    def test_tlc_barriers(self):
        result = run_insert_workload(
            design="2lc", threads=1, inserts_per_thread=5, seed=8
        )
        stats = result.trace.stats()
        # Copy-completion barrier (our fix) + line 27 (single thread is
        # always oldest): two per insert.
        assert stats.persist_barriers == 2 * 5
        assert stats.new_strands == 5

    def test_tlc_paper_faithful_drops_fix_barrier(self):
        result = run_insert_workload(
            design="2lc",
            threads=1,
            inserts_per_thread=5,
            seed=8,
            paper_faithful=True,
        )
        assert result.trace.stats().persist_barriers == 1 * 5

    @pytest.mark.parametrize("design", sorted(DESIGN_FACTORIES))
    def test_head_stores_are_persistent(self, design):
        result = run_insert_workload(
            design=design, threads=1, inserts_per_thread=3, seed=9
        )
        head_stores = [
            event
            for event in result.trace
            if event.is_store_like and event.addr == result.queue.head_addr
        ]
        assert head_stores and all(e.persistent for e in head_stores)


class TestDequeue:
    def test_fifo_roundtrip(self):
        machine = Machine(scheduler=RandomScheduler(seed=2))
        queue = allocate_queue(machine, 4096)
        dut = make_cwl(machine, queue)
        entries = [padded_entry(0, i, 100) for i in range(6)]

        def producer(ctx):
            for entry in entries:
                yield from dut.insert(ctx, entry)

        def consumer(ctx):
            received = []
            while len(received) < len(entries):
                payload = yield from dut.dequeue(ctx)
                if payload is not None:
                    received.append(payload)
            return received

        machine.spawn(producer)
        consumer_thread = machine.spawn(consumer)
        machine.run()
        assert consumer_thread.result == entries

    def test_dequeue_empty_returns_none(self):
        machine = Machine(scheduler=RandomScheduler(seed=3))
        queue = allocate_queue(machine, 4096)
        dut = make_cwl(machine, queue)

        def body(ctx):
            value = yield from dut.dequeue(ctx)
            return value

        thread = machine.spawn(body)
        machine.run()
        assert thread.result is None

    def test_wraparound_reuses_space(self):
        """Insert/dequeue far more bytes than capacity: wrap must work and
        the queue must stay recoverable at the end."""
        machine = Machine(scheduler=RandomScheduler(seed=4))
        queue = allocate_queue(machine, 512)  # four 128-byte records
        dut = make_cwl(machine, queue)

        def body(ctx):
            for i in range(20):
                yield from dut.insert(ctx, padded_entry(0, i, 100))
                if i >= 2:
                    yield from dut.dequeue(ctx)
            return None

        machine.spawn(body)
        machine.run()
        _, entries = recover_entries(final_image(machine), queue.base)
        # 20 inserted, 18 dequeued: two live entries, the newest ones.
        assert [e.payload for e in entries] == [
            padded_entry(0, 18, 100),
            padded_entry(0, 19, 100),
        ]
        head = machine.memory.read(queue.head_addr, 8)
        assert head == 20 * 128  # absolute offsets keep growing past wrap


class TestRacingEquivalence:
    def test_single_thread_racing_matches_safe_critical_path(self):
        """Paper: 'There is no distinction between the two when using a
        single thread (races cannot occur within one thread)'."""
        from repro.core import analyze

        safe = run_insert_workload(
            design="cwl", threads=1, inserts_per_thread=30, seed=10
        )
        racing = run_insert_workload(
            design="cwl", threads=1, inserts_per_thread=30, racing=True, seed=10
        )
        for model in ("epoch", "strand"):
            assert (
                analyze(safe.trace, model).critical_path
                == analyze(racing.trace, model).critical_path
            )
