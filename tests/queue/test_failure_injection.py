"""Recovery correctness under failure injection — the paper's central
correctness claim, tested end-to-end.

For each queue design and persistency model we materialise the exact
persist DAG, then check that *every* sampled consistent cut (random,
linear-extension, prefix, and all minimal cuts) recovers to a state
where each entry the head pointer covers is intact.

The suite also demonstrates the documented deviation: 2LC exactly as
printed in Algorithm 1 (``paper_faithful=True``) violates recovery under
epoch/strand persistency, because nothing orders a non-oldest insert's
data persists before the head persist that covers them.
"""

import pytest

from repro.core import FailureInjector, analyze_graph
from repro.errors import RecoveryError
from repro.queue import run_insert_workload, verify_recovery

MODELS = ("strict", "epoch", "strand")


def check_all_cuts(result, model, random_samples=20):
    graph = analyze_graph(result.trace, model).graph
    injector = FailureInjector(graph, result.base_image)
    checked = 0
    for cut, image in injector.minimal_images():
        verify_recovery(image, result.queue.base, result.expected)
        checked += 1
    for cut, image in injector.random_images(random_samples, seed=99):
        verify_recovery(image, result.queue.base, result.expected)
        checked += 1
    for cut, image in injector.extension_images(random_samples, seed=7):
        verify_recovery(image, result.queue.base, result.expected)
        checked += 1
    for cut, image in injector.prefix_images(step=25):
        verify_recovery(image, result.queue.base, result.expected)
        checked += 1
    return checked


class TestCwlRecoveryCorrectness:
    @pytest.mark.parametrize("model", MODELS)
    def test_race_free_variant(self, cwl_4t, model):
        assert check_all_cuts(cwl_4t, model) > 100

    @pytest.mark.parametrize("model", ["epoch", "strand"])
    def test_racing_variant(self, cwl_4t_racing, model):
        """Racing epochs deliberately allow persist-epoch races; strong
        persist atomicity on the head pointer must still make recovery
        correct (Section 6)."""
        assert check_all_cuts(cwl_4t_racing, model) > 100

    @pytest.mark.parametrize("model", MODELS)
    def test_single_thread(self, cwl_1t, model):
        assert check_all_cuts(cwl_1t, model, random_samples=10) > 100


class TestTlcRecoveryCorrectness:
    @pytest.mark.parametrize("model", MODELS)
    def test_fixed_design(self, tlc_4t, model):
        assert check_all_cuts(tlc_4t, model) > 100


class TestPaperFaithfulTlcHole:
    def test_printed_algorithm_violates_epoch_recovery(self):
        """Algorithm 1 as printed: some minimal cut recovers a hole under
        epoch persistency.  (Multiple seeds: the schedule must complete a
        younger insert before an older one for the bug to bite.)"""
        holes = 0
        for seed in range(4):
            result = run_insert_workload(
                design="2lc",
                threads=4,
                inserts_per_thread=8,
                seed=seed,
                paper_faithful=True,
            )
            graph = analyze_graph(result.trace, "epoch").graph
            injector = FailureInjector(graph, result.base_image)
            for _, image in injector.minimal_images():
                try:
                    verify_recovery(image, result.queue.base, result.expected)
                except RecoveryError:
                    holes += 1
        assert holes > 0

    def test_printed_algorithm_safe_under_strict(self):
        """Under strict persistency program order covers the missing
        barrier, so the printed algorithm recovers correctly."""
        for seed in range(2):
            result = run_insert_workload(
                design="2lc",
                threads=4,
                inserts_per_thread=8,
                seed=seed,
                paper_faithful=True,
            )
            graph = analyze_graph(result.trace, "strict").graph
            injector = FailureInjector(graph, result.base_image)
            for _, image in injector.minimal_images(step=3):
                verify_recovery(image, result.queue.base, result.expected)

    def test_fix_restores_epoch_recovery(self):
        """Same seeds, fixed barrier: zero violations."""
        for seed in range(4):
            result = run_insert_workload(
                design="2lc", threads=4, inserts_per_thread=8, seed=seed
            )
            graph = analyze_graph(result.trace, "epoch").graph
            injector = FailureInjector(graph, result.base_image)
            for _, image in injector.minimal_images():
                verify_recovery(image, result.queue.base, result.expected)


class TestVolatileBaseline:
    def test_volatile_queue_produces_no_persists(self):
        result = run_insert_workload(
            design="cwl",
            threads=2,
            inserts_per_thread=5,
            seed=1,
            volatile_queue=True,
        )
        assert result.trace.stats().persists == 0
        assert result.base_image is None
