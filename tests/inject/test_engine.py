"""Tests for the fault-injection engine: determinism and fault semantics."""

import pytest

from repro.core import analyze_graph
from repro.core.recovery import FailureInjector, image_at_cut
from repro.errors import FuzzError
from repro.inject import (
    FaultPlan,
    cut_salt,
    fault_kind_counts,
    materialize_faulty,
)
from repro.queue import run_insert_workload


@pytest.fixture(scope="module")
def case():
    result = run_insert_workload(
        design="cwl", threads=2, inserts_per_thread=3, seed=3
    )
    graph = analyze_graph(result.trace, "epoch").graph
    return graph, result.base_image


def image_bytes(image):
    return image.read_bytes(image.base, image.size)


def full_cut(graph):
    return frozenset(node.pid for node in graph.nodes)


PLANS = [
    FaultPlan(seed=11, torn=0.6),
    FaultPlan(seed=11, dropped=0.6),
    FaultPlan(seed=11, corrupt=3),
    FaultPlan(seed=11, torn=0.4, dropped=0.4, corrupt=2),
]


class TestDeterminism:
    @pytest.mark.parametrize("plan", PLANS, ids=lambda p: ",".join(p.kinds))
    def test_same_triple_same_image_and_faults(self, case, plan):
        graph, base = case
        cut = full_cut(graph)
        image_a, faults_a = materialize_faulty(graph, cut, base, plan)
        image_b, faults_b = materialize_faulty(graph, cut, base, plan)
        assert faults_a == faults_b
        assert image_bytes(image_a) == image_bytes(image_b)

    def test_different_seeds_diverge(self, case):
        graph, base = case
        cut = full_cut(graph)
        _, faults_a = materialize_faulty(
            graph, cut, base, FaultPlan(seed=1, torn=0.5)
        )
        _, faults_b = materialize_faulty(
            graph, cut, base, FaultPlan(seed=2, torn=0.5)
        )
        assert faults_a != faults_b

    def test_cut_salt_is_order_independent_and_stable(self):
        assert cut_salt([3, 1, 2]) == cut_salt((2, 3, 1))
        assert cut_salt([0, 1]) != cut_salt([0, 2])

    def test_empty_faults_means_identical_to_clean(self, case):
        graph, base = case
        cut = full_cut(graph)
        # Probability-0 faults can't fire, but the plan must still be
        # valid — use corrupt with an all-zero landed-write guard off.
        plan = FaultPlan(seed=0, torn=1e-12, max_faults=1)
        image, faults = materialize_faulty(graph, cut, base, plan)
        if not faults:
            clean = image_at_cut(graph, cut, base, check=False)
            assert image_bytes(image) == image_bytes(clean)


class TestSemantics:
    def test_invalid_plan_rejected(self, case):
        graph, base = case
        with pytest.raises(FuzzError):
            materialize_faulty(graph, full_cut(graph), base, FaultPlan())

    def test_torn_faults_change_the_image(self, case):
        graph, base = case
        cut = full_cut(graph)
        plan = FaultPlan(seed=5, torn=0.9, max_faults=8)
        image, faults = materialize_faulty(graph, cut, base, plan)
        assert faults
        assert all(fault.kind == "torn" for fault in faults)
        clean = image_at_cut(graph, cut, base, check=False)
        assert image_bytes(image) != image_bytes(clean)

    def test_maximal_drop_scope_never_drops_depended_on_persists(self, case):
        graph, base = case
        cut = full_cut(graph)
        for seed in range(40):
            plan = FaultPlan(seed=seed, dropped=0.8, drop_scope="maximal")
            _, faults = materialize_faulty(graph, cut, base, plan)
            dropped = {f.pid for f in faults if f.kind == "dropped"}
            for pid in cut:
                assert not (dropped & graph.ancestors(pid)), (
                    f"seed {seed}: dropped a persist pid {pid} depends on"
                )

    def test_any_drop_scope_can_drop_non_maximal_persists(self, case):
        graph, base = case
        cut = full_cut(graph)
        hit_non_maximal = False
        for seed in range(40):
            plan = FaultPlan(
                seed=seed, dropped=0.8, drop_scope="any", max_faults=16
            )
            _, faults = materialize_faulty(graph, cut, base, plan)
            dropped = {f.pid for f in faults if f.kind == "dropped"}
            for pid in cut:
                if dropped & graph.ancestors(pid):
                    hit_non_maximal = True
        assert hit_non_maximal

    def test_corrupt_flips_one_bit_per_fault(self, case):
        graph, base = case
        cut = full_cut(graph)
        plan = FaultPlan(seed=9, corrupt=1)
        image, faults = materialize_faulty(graph, cut, base, plan)
        assert fault_kind_counts(faults) == {"corrupt": 1}
        clean = image_at_cut(graph, cut, base, check=False)
        diff = [
            (a, b)
            for a, b in zip(image_bytes(image), image_bytes(clean))
            if a != b
        ]
        assert len(diff) == 1
        a, b = diff[0]
        assert bin(a ^ b).count("1") == 1

    def test_max_faults_caps_torn_and_dropped(self, case):
        graph, base = case
        cut = full_cut(graph)
        plan = FaultPlan(
            seed=3, torn=1.0, dropped=1.0, drop_scope="any", max_faults=2
        )
        _, faults = materialize_faulty(graph, cut, base, plan)
        counts = fault_kind_counts(faults)
        assert counts.get("torn", 0) + counts.get("dropped", 0) <= 2

    def test_injector_rejects_inconsistent_cuts(self, case):
        graph, base = case
        from repro.errors import RecoveryError

        injector = FailureInjector(graph, base)
        pids = sorted(node.pid for node in graph.nodes)
        latest = pids[-1]
        if graph.ancestors(latest):
            with pytest.raises(RecoveryError):
                injector.faulty_image_for(
                    {latest}, FaultPlan.for_kind("torn")
                )

    def test_injector_faulty_image_matches_engine(self, case):
        graph, base = case
        injector = FailureInjector(graph, base)
        cut = full_cut(graph)
        plan = FaultPlan.for_kind("corrupt", seed=4)
        via_injector, faults_a = injector.faulty_image_for(cut, plan)
        via_engine, faults_b = materialize_faulty(graph, cut, base, plan)
        assert faults_a == faults_b
        assert image_bytes(via_injector) == image_bytes(via_engine)
