"""Tests for serializable fault plans."""

import pytest

from repro.errors import FuzzError
from repro.inject import DROP_SCOPES, FAULT_KINDS, FaultPlan


class TestValidation:
    def test_default_plan_enables_nothing_and_fails_validation(self):
        with pytest.raises(FuzzError):
            FaultPlan().validate()

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_for_kind_produces_single_kind_plans(self, kind):
        plan = FaultPlan.for_kind(kind, seed=7)
        plan.validate()
        assert plan.kinds == (kind,)
        assert plan.seed == 7

    def test_unknown_kind_rejected(self):
        with pytest.raises(FuzzError):
            FaultPlan.for_kind("gamma-ray")

    @pytest.mark.parametrize(
        "bad",
        [
            {"torn": 1.5},
            {"dropped": -0.1},
            {"torn": 0.5, "corrupt": -1},
            {"torn": 0.5, "tear_granularity": 3},
            {"torn": 0.5, "tear_granularity": 0},
            {"dropped": 0.5, "drop_scope": "everything"},
            {"torn": 0.5, "max_faults": 0},
        ],
    )
    def test_bad_parameters_rejected(self, bad):
        with pytest.raises(FuzzError):
            FaultPlan(**bad).validate()

    def test_drop_scopes_are_closed(self):
        for scope in DROP_SCOPES:
            FaultPlan(dropped=0.5, drop_scope=scope).validate()


class TestSerialization:
    def test_json_round_trip(self):
        plan = FaultPlan(
            seed=42, torn=0.25, dropped=0.1, corrupt=3,
            tear_granularity=2, drop_scope="any", wear_bias=False,
            max_faults=6,
        )
        assert FaultPlan.from_json(plan.to_json()) == plan

    def test_canonical_json_is_stable(self):
        plan = FaultPlan.for_kind("torn", seed=1)
        assert plan.to_json() == plan.to_json()
        assert " " not in plan.to_json()

    def test_unparsable_json_rejected(self):
        with pytest.raises(FuzzError):
            FaultPlan.from_json("{truncated")
        with pytest.raises(FuzzError):
            FaultPlan.from_json("[1, 2]")

    def test_invalid_payload_rejected(self):
        with pytest.raises(FuzzError):
            FaultPlan.from_payload({"seed": 0})
        with pytest.raises(FuzzError):
            FaultPlan.from_payload(
                {**FaultPlan.for_kind("torn").describe(), "torn": 2.0}
            )
