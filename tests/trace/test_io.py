"""Round-trip and robustness tests for trace serialization."""

import io

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import TraceError
from repro.trace import (
    EventKind,
    Trace,
    load_file,
    make_access,
    make_marker,
    save_file,
)
from repro.trace.io import dump, event_from_record, event_to_record, load


def roundtrip(trace):
    stream = io.StringIO()
    dump(trace, stream)
    stream.seek(0)
    return load(stream)


class TestRoundTrip:
    def test_events_and_meta_survive(self):
        trace = Trace(meta={"design": "cwl", "threads": 4})
        trace.append(make_marker(0, 0, EventKind.THREAD_BEGIN))
        trace.append(
            make_access(1, 0, EventKind.STORE, 0x8000_0000, 8, 123, True)
        )
        trace.append(make_marker(2, 0, EventKind.MARK, "insert:end"))
        loaded = roundtrip(trace)
        assert loaded.meta == trace.meta
        assert list(loaded) == list(trace)

    def test_file_roundtrip(self, tmp_path, cwl_1t):
        path = tmp_path / "trace.jsonl"
        save_file(cwl_1t.trace, path)
        loaded = load_file(path)
        assert len(loaded) == len(cwl_1t.trace)
        assert list(loaded) == list(cwl_1t.trace)
        assert loaded.meta == cwl_1t.trace.meta

    def test_defaults_omitted_from_records(self):
        event = make_marker(0, 0, EventKind.PERSIST_BARRIER)
        record = event_to_record(event)
        assert set(record) == {"seq", "thread", "kind"}

    def test_record_roundtrip_preserves_info(self):
        event = make_marker(7, 3, EventKind.MARK, "hello world")
        assert event_from_record(event_to_record(event)) == event


class TestMalformedInput:
    def test_empty_stream(self):
        with pytest.raises(TraceError):
            load(io.StringIO(""))

    def test_missing_meta_header(self):
        with pytest.raises(TraceError):
            load(io.StringIO('{"seq": 0}\n'))

    def test_non_dict_header(self):
        for header in ('[1, 2, 3]\n', '"meta"\n', "42\n", "null\n"):
            with pytest.raises(TraceError):
                load(io.StringIO(header))

    def test_non_dict_meta_value(self):
        with pytest.raises(TraceError):
            load(io.StringIO('{"meta": [1, 2]}\n'))

    def test_non_dict_event_line(self):
        with pytest.raises(TraceError):
            load(io.StringIO('{"meta": {}}\n[0, 1, "load"]\n'))

    def test_truncated_event_line(self):
        stream = io.StringIO('{"meta": {}}\n{"seq": 0, "thr')
        with pytest.raises(TraceError):
            load(stream)

    def test_garbage_line(self):
        stream = io.StringIO('{"meta": {}}\nnot json\n')
        with pytest.raises(TraceError):
            load(stream)

    def test_unknown_kind(self):
        stream = io.StringIO(
            '{"meta": {}}\n{"seq": 0, "thread": 0, "kind": "teleport"}\n'
        )
        with pytest.raises(TraceError):
            load(stream)

    def test_blank_lines_skipped(self):
        stream = io.StringIO(
            '{"meta": {}}\n\n{"seq": 0, "thread": 0, "kind": "mark"}\n\n'
        )
        assert len(load(stream)) == 1


_event_strategy = st.builds(
    lambda seq, thread, kind, addr_words, value, persistent: (
        make_access(
            seq, thread, kind, 0x1000 + 8 * addr_words, 8, value, persistent
        )
        if kind in (EventKind.LOAD, EventKind.STORE, EventKind.RMW)
        else make_marker(seq, thread, kind)
    ),
    seq=st.just(0),
    thread=st.integers(0, 7),
    kind=st.sampled_from(
        [
            EventKind.LOAD,
            EventKind.STORE,
            EventKind.RMW,
            EventKind.PERSIST_BARRIER,
            EventKind.NEW_STRAND,
            EventKind.MARK,
        ]
    ),
    addr_words=st.integers(0, 1000),
    value=st.integers(0, (1 << 64) - 1),
    persistent=st.booleans(),
)


@settings(max_examples=50, deadline=None)
@given(st.lists(_event_strategy, max_size=40))
def test_arbitrary_traces_roundtrip(events):
    trace = Trace(meta={"n": len(events)})
    for index, event in enumerate(events):
        trace.append(
            make_access(
                index, event.thread, event.kind, event.addr, event.size,
                event.value, event.persistent,
            )
            if event.is_access
            else make_marker(index, event.thread, event.kind, event.info)
        )
    assert list(roundtrip(trace)) == list(trace)
