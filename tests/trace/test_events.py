"""Unit tests for trace event records."""

import pytest

from repro.errors import TraceError
from repro.trace import EventKind, MemoryEvent, make_access, make_marker


class TestEventConstruction:
    def test_access_event(self):
        event = make_access(0, 1, EventKind.STORE, 0x1000, 8, 42, True)
        assert event.is_access and event.is_store_like and event.is_persist

    def test_load_is_not_persist(self):
        event = make_access(0, 0, EventKind.LOAD, 0x1000, 8, 0, True)
        assert event.is_load_like and not event.is_persist

    def test_rmw_is_both_load_and_store(self):
        event = make_access(0, 0, EventKind.RMW, 0x1000, 8, 1, False)
        assert event.is_load_like and event.is_store_like
        assert not event.is_persist  # volatile RMW

    def test_persistent_rmw_is_persist(self):
        event = make_access(0, 0, EventKind.RMW, 0x1000, 8, 1, True)
        assert event.is_persist

    def test_marker_event(self):
        event = make_marker(3, 2, EventKind.PERSIST_BARRIER)
        assert not event.is_access

    def test_marker_rejects_access_kind(self):
        with pytest.raises(TraceError):
            make_marker(0, 0, EventKind.LOAD)

    def test_access_rejects_word_crossing(self):
        with pytest.raises(Exception):
            make_access(0, 0, EventKind.LOAD, 0x1004, 8, 0, False)

    def test_marker_rejects_address(self):
        with pytest.raises(TraceError):
            MemoryEvent(seq=0, thread=0, kind=EventKind.MARK, addr=0x10)

    def test_negative_seq_rejected(self):
        with pytest.raises(TraceError):
            make_marker(-1, 0, EventKind.MARK)

    def test_negative_thread_rejected(self):
        with pytest.raises(TraceError):
            make_marker(0, -1, EventKind.MARK)


class TestDataBytes:
    def test_store_data_little_endian(self):
        event = make_access(0, 0, EventKind.STORE, 0x1000, 4, 0x01020304, True)
        assert event.data_bytes() == bytes([4, 3, 2, 1])

    def test_load_has_no_data(self):
        event = make_access(0, 0, EventKind.LOAD, 0x1000, 8, 5, False)
        with pytest.raises(TraceError):
            event.data_bytes()

    def test_data_roundtrips_through_int(self):
        payload = b"\xde\xad\xbe\xef\x00\x11\x22\x33"
        value = int.from_bytes(payload, "little")
        event = make_access(0, 0, EventKind.STORE, 0x1000, 8, value, True)
        assert event.data_bytes() == payload
