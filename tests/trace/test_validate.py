"""Tests for SC-value and structural trace validation."""

import pytest

from repro.errors import TraceError
from repro.trace import (
    EventKind,
    Trace,
    make_access,
    make_marker,
    validate,
    validate_sc_values,
    validate_structure,
)

ADDR = 0x8000_0000


def trace_of(*events):
    trace = Trace()
    for event in events:
        trace.append(event)
    return trace


class TestScValues:
    def test_load_sees_last_store(self):
        trace = trace_of(
            make_access(0, 0, EventKind.STORE, ADDR, 8, 7, True),
            make_access(1, 1, EventKind.LOAD, ADDR, 8, 7, True),
        )
        validate_sc_values(trace)

    def test_stale_load_detected(self):
        trace = trace_of(
            make_access(0, 0, EventKind.STORE, ADDR, 8, 7, True),
            make_access(1, 1, EventKind.LOAD, ADDR, 8, 3, True),
        )
        with pytest.raises(TraceError):
            validate_sc_values(trace)

    def test_partial_overlap_checked_bytewise(self):
        trace = trace_of(
            make_access(0, 0, EventKind.STORE, ADDR, 8, 0xAABBCCDDEEFF0011, True),
            make_access(1, 0, EventKind.STORE, ADDR, 2, 0x1234, True),
            make_access(2, 1, EventKind.LOAD, ADDR, 4, 0xEEFF1234, True),
        )
        validate_sc_values(trace)

    def test_unwritten_bytes_unconstrained(self):
        trace = trace_of(
            make_access(0, 0, EventKind.LOAD, ADDR, 8, 0xFFFF, True),
        )
        validate_sc_values(trace)

    def test_rmw_not_checked_as_load(self):
        # RMW records the written value; validators must not compare it
        # against the replay as if it were observed.
        trace = trace_of(
            make_access(0, 0, EventKind.STORE, ADDR, 8, 5, True),
            make_access(1, 1, EventKind.RMW, ADDR, 8, 6, True),
            make_access(2, 0, EventKind.LOAD, ADDR, 8, 6, True),
        )
        validate_sc_values(trace)


class TestStructure:
    def test_well_formed_lifecycle(self):
        trace = trace_of(
            make_marker(0, 0, EventKind.THREAD_BEGIN),
            make_marker(1, 0, EventKind.MARK, "x"),
            make_marker(2, 0, EventKind.THREAD_END),
        )
        validate_structure(trace)

    def test_double_begin_rejected(self):
        trace = trace_of(
            make_marker(0, 0, EventKind.THREAD_BEGIN),
            make_marker(1, 0, EventKind.THREAD_BEGIN),
        )
        with pytest.raises(TraceError):
            validate_structure(trace)

    def test_end_without_begin_rejected(self):
        trace = trace_of(make_marker(0, 0, EventKind.THREAD_END))
        with pytest.raises(TraceError):
            validate_structure(trace)

    def test_event_after_end_rejected(self):
        trace = trace_of(
            make_marker(0, 0, EventKind.THREAD_BEGIN),
            make_marker(1, 0, EventKind.THREAD_END),
            make_marker(2, 0, EventKind.MARK, "zombie"),
        )
        with pytest.raises(TraceError):
            validate_structure(trace)

    def test_event_before_begin_rejected(self):
        trace = trace_of(
            make_marker(0, 0, EventKind.THREAD_BEGIN),
            make_marker(1, 1, EventKind.MARK, "early"),
        )
        with pytest.raises(TraceError):
            validate_structure(trace)


class TestEndToEnd:
    def test_real_workload_traces_validate(self, cwl_1t, cwl_4t, tlc_4t):
        for workload in (cwl_1t, cwl_4t, tlc_4t):
            validate(workload.trace)
