"""Unit tests for the trace container and statistics."""

import pytest

from repro.errors import TraceError
from repro.trace import EventKind, Trace, make_access, make_marker


def sample_trace():
    trace = Trace(meta={"program": "test"})
    trace.append(make_marker(0, 0, EventKind.THREAD_BEGIN))
    trace.append(make_access(1, 0, EventKind.STORE, 0x8000_0000, 8, 1, True))
    trace.append(make_access(2, 0, EventKind.LOAD, 0x8000_0000, 8, 1, True))
    trace.append(make_marker(3, 0, EventKind.PERSIST_BARRIER))
    trace.append(make_access(4, 1, EventKind.RMW, 0x1000, 8, 2, False))
    trace.append(make_marker(5, 0, EventKind.MARK, "insert:end"))
    trace.append(make_marker(6, 1, EventKind.NEW_STRAND))
    return trace


class TestContainer:
    def test_len_and_iteration(self):
        trace = sample_trace()
        assert len(trace) == 7
        assert [event.seq for event in trace] == list(range(7))

    def test_indexing(self):
        trace = sample_trace()
        assert trace[1].kind is EventKind.STORE

    def test_out_of_order_seq_rejected(self):
        trace = Trace()
        with pytest.raises(TraceError):
            trace.append(make_marker(5, 0, EventKind.MARK))

    def test_meta_preserved(self):
        assert sample_trace().meta == {"program": "test"}

    def test_thread_views(self):
        trace = sample_trace()
        assert trace.thread_ids() == [0, 1]
        thread0 = trace.events_for_thread(0)
        assert all(event.thread == 0 for event in thread0)
        assert len(thread0) == 5

    def test_count_marks(self):
        trace = sample_trace()
        assert trace.count_marks("insert:end") == 1
        assert trace.count_marks("nonexistent") == 0


class TestStats:
    def test_stats_counts(self):
        stats = sample_trace().stats()
        assert stats.events == 7
        assert stats.loads == 1
        assert stats.stores == 1
        assert stats.rmws == 1
        assert stats.accesses == 3
        assert stats.persists == 1  # the persistent store; RMW is volatile
        assert stats.persist_barriers == 1
        assert stats.new_strands == 1
        assert stats.threads == 2
        assert stats.marks == {"insert:end": 1}

    def test_volatile_accesses(self):
        stats = sample_trace().stats()
        assert stats.volatile_accesses == stats.accesses - stats.persists

    def test_empty_trace_stats(self):
        stats = Trace().stats()
        assert stats.events == 0
        assert stats.threads == 0
