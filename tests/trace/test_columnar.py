"""Columnar trace buffers: Trace parity and chunked streaming."""

import io

import pytest

from repro.errors import TraceError
from repro.trace import (
    ColumnarChunk,
    ColumnarTrace,
    EventKind,
    MemoryEvent,
    Trace,
    TraceReader,
    TraceWriter,
    chunks_from_events,
)
from repro.trace.io import dump


def sample_events(count=10):
    events = []
    for seq in range(count):
        kind = (
            EventKind.PERSIST_BARRIER
            if seq % 5 == 4
            else (EventKind.LOAD if seq % 3 == 2 else EventKind.STORE)
        )
        if kind is EventKind.PERSIST_BARRIER:
            events.append(
                MemoryEvent(seq=seq, thread=seq % 2, kind=kind)
            )
        else:
            events.append(
                MemoryEvent(
                    seq=seq,
                    thread=seq % 2,
                    kind=kind,
                    addr=0x8000_0000 + 8 * (seq % 4),
                    size=8,
                    value=seq + 1,
                    persistent=seq % 2 == 0,
                    sync=seq % 7 == 0,
                    info="m" if seq % 6 == 5 else "",
                )
            )
    return events


def sample_trace(count=10):
    trace = Trace(meta={"source": "test"})
    trace.extend(sample_events(count))
    return trace


class TestColumnarChunk:
    def test_round_trips_every_field(self):
        chunk = ColumnarChunk(0)
        for event in sample_events():
            chunk.append_event(event)
        assert list(chunk) == sample_events()

    def test_event_validates_on_materialisation(self):
        chunk = ColumnarChunk(0)
        chunk.append_raw(EventKind.STORE, 0)  # size 0: invalid access
        with pytest.raises(Exception):
            chunk.event(0)

    def test_truncate_drops_tail_and_infos(self):
        chunk = ColumnarChunk(0)
        for event in sample_events(8):
            chunk.append_event(event)
        chunk.truncate(5)
        assert len(chunk) == 5
        assert all(index < 5 for index in chunk.infos)
        with pytest.raises(TraceError):
            chunk.truncate(9)


class TestColumnarTrace:
    def test_from_trace_round_trip(self):
        trace = sample_trace(23)
        columnar = ColumnarTrace.from_trace(trace, chunk_events=7)
        assert len(columnar) == len(trace)
        assert list(columnar) == list(trace)
        assert columnar.to_trace().events == trace.events
        assert columnar[3] == trace[3]
        assert columnar[-1] == trace[-1]

    def test_chunk_rollover_preserves_base_seqs(self):
        columnar = ColumnarTrace(chunk_events=4)
        for event in sample_events(10):
            columnar.append(event)
        chunks = list(columnar.chunks())
        assert [chunk.base_seq for chunk in chunks] == [0, 4, 8]
        assert [len(chunk) for chunk in chunks] == [4, 4, 2]

    def test_append_enforces_dense_seq(self):
        columnar = ColumnarTrace()
        columnar.append(sample_events(1)[0])
        with pytest.raises(TraceError):
            columnar.append(
                MemoryEvent(seq=5, thread=0, kind=EventKind.PERSIST_BARRIER)
            )

    def test_truncate_matches_trace(self):
        for cut in (0, 3, 4, 9, 10):
            trace = sample_trace(10)
            columnar = ColumnarTrace.from_trace(trace, chunk_events=4)
            trace.truncate(cut)
            columnar.truncate(cut)
            assert list(columnar) == list(trace)

    def test_stats_and_marks_match_trace(self):
        trace = sample_trace(30)
        columnar = ColumnarTrace.from_trace(trace, chunk_events=8)
        assert columnar.stats() == trace.stats()
        assert columnar.count_marks("m") == trace.count_marks("m")
        assert columnar.thread_ids() == trace.thread_ids()
        assert columnar.events_for_thread(1) == trace.events_for_thread(1)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(TraceError):
            ColumnarTrace(chunk_events=0)


class TestChunksFromEvents:
    def test_chunk_sizes_and_coverage(self):
        events = sample_events(11)
        chunks = list(chunks_from_events(iter(events), 4))
        assert [len(chunk) for chunk in chunks] == [4, 4, 3]
        flattened = [event for chunk in chunks for event in chunk]
        assert flattened == events

    def test_rejects_nonpositive_chunk(self):
        with pytest.raises(TraceError):
            list(chunks_from_events([], 0))


class TestStreamingIo:
    def test_reader_events_match_batch_load(self):
        trace = sample_trace(12)
        buffer = io.StringIO()
        dump(trace, buffer)
        buffer.seek(0)
        with TraceReader(buffer) as reader:
            assert reader.meta == trace.meta
            assert list(reader.events()) == trace.events

    def test_reader_chunks_match_events(self):
        trace = sample_trace(12)
        buffer = io.StringIO()
        dump(trace, buffer)
        buffer.seek(0)
        with TraceReader(buffer) as reader:
            chunks = list(reader.chunks(chunk_events=5))
        assert [event for chunk in chunks for event in chunk] == trace.events

    def test_writer_round_trips_through_reader(self, tmp_path):
        trace = sample_trace(9)
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path, meta=trace.meta) as writer:
            for event in trace:
                writer.write(event)
        assert writer.events_written == 9
        with TraceReader(path) as reader:
            assert reader.meta == trace.meta
            assert list(reader.events()) == trace.events

    def test_writer_write_chunk(self, tmp_path):
        trace = sample_trace(9)
        columnar = ColumnarTrace.from_trace(trace, chunk_events=4)
        path = tmp_path / "trace.jsonl"
        with TraceWriter(path, meta=trace.meta) as writer:
            for chunk in columnar.chunks():
                writer.write_chunk(chunk)
        with TraceReader(path) as reader:
            assert list(reader.events()) == trace.events

    def test_closed_reader_rejects_iteration(self):
        buffer = io.StringIO()
        dump(sample_trace(2), buffer)
        buffer.seek(0)
        reader = TraceReader(buffer)
        with pytest.raises(TraceError):
            reader.events()


class TestMachineColumnarEmit:
    def test_columnar_machine_trace_matches_object_trace(self):
        from repro.sim import Machine, RoundRobinScheduler

        def body(ctx, base):
            for index in range(4):
                yield from ctx.store(base + 8 * index, index + 1)
            yield from ctx.persist_barrier()

        def run(columnar):
            machine = Machine(
                scheduler=RoundRobinScheduler(), columnar=columnar
            )
            base = machine.persistent_heap.malloc(64)
            machine.spawn(body, base)
            machine.spawn(body, base + 64)
            machine.run()
            return machine.trace

        plain = run(False)
        columnar = run(True)
        assert isinstance(columnar, ColumnarTrace)
        assert list(columnar) == list(plain)
        assert columnar.stats() == plain.stats()
