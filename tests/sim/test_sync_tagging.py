"""Invariant: lock implementations tag every one of their accesses sync.

The race detector's happens-before edges come exclusively from
sync-tagged accesses; an untagged lock access silently weakens the lint.
This test runs each lock under contention and checks that every access
to lock-owned memory carries the sync flag — and that workload data
accesses never do.
"""

import pytest

from repro.sim import LOCK_KINDS, Machine, RandomScheduler, make_lock
from repro.trace import EventKind


@pytest.mark.parametrize("kind", sorted(LOCK_KINDS))
def test_all_lock_accesses_are_sync_tagged(kind):
    machine = Machine(scheduler=RandomScheduler(seed=13))
    data = machine.volatile_heap.malloc(8)
    lock = make_lock(machine, kind)

    def body(ctx, n):
        for _ in range(n):
            yield from lock.acquire(ctx)
            value = yield from ctx.load(data)
            yield from ctx.store(data, value + 1)
            yield from lock.release(ctx)

    for _ in range(3):
        machine.spawn(body, 12)
    trace = machine.run()
    assert machine.memory.read(data, 8) == 36

    for event in trace:
        if not event.is_access:
            continue
        if event.addr == data:
            assert not event.sync, f"data access tagged sync: {event}"
        else:
            # Everything else this program touches is lock-owned memory
            # (lock words, MCS queue nodes).
            assert event.sync, f"lock access missing sync tag: {event}"


@pytest.mark.parametrize("kind", sorted(LOCK_KINDS))
def test_lock_state_is_volatile(kind):
    """Paper Section 5.2's discipline: locks live in volatile memory, so
    lock operations generate no persists."""
    machine = Machine(scheduler=RandomScheduler(seed=14))
    lock = make_lock(machine, kind)

    def body(ctx):
        for _ in range(5):
            yield from lock.acquire(ctx)
            yield from lock.release(ctx)

    for _ in range(2):
        machine.spawn(body)
    trace = machine.run()
    assert trace.stats().persists == 0
    assert all(not e.persistent for e in trace if e.is_access)


def test_queue_sync_footprint_matches_lock_events(cwl_4t):
    """In the queue workload, sync accesses are exactly the non-persistent
    lock traffic: no persistent access is ever sync-tagged."""
    for event in cwl_4t.trace:
        if event.is_access and event.sync:
            assert not event.persistent
    sync_count = sum(1 for e in cwl_4t.trace if e.is_access and e.sync)
    assert sync_count > 0


def test_waituntil_loads_inherit_sync_flag():
    """Blocking waits on lock words must trace their loads as sync (both
    the failed check and the wake-up observation)."""
    machine = Machine(scheduler=RandomScheduler(seed=15))
    flag = machine.volatile_heap.malloc(8)

    def waiter(ctx):
        yield from ctx.wait_equals(flag, 1, sync=True)

    def setter(ctx):
        for _ in range(4):
            yield from ctx.mark("spin")
        yield from ctx.store(flag, 1, sync=True)

    machine.spawn(waiter)
    machine.spawn(setter)
    trace = machine.run()
    flag_loads = [
        e for e in trace if e.kind is EventKind.LOAD and e.addr == flag
    ]
    assert flag_loads and all(e.sync for e in flag_loads)
