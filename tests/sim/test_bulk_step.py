"""Bulk lane stepping: the scheduler fast path must be invisible.

``Machine.run(bulk_quantum=N)`` lets a picked agent take up to N
consecutive steps while its next-step footprint stays non-conflicting
with every other agent's.  For disjoint-footprint programs the executed
trace differs only in interleaving — never in per-thread program order,
analysis results, or final memory — and conflicting steps must still go
back through the scheduler.
"""

import pytest

from repro.core import analyze
from repro.errors import SimulationError
from repro.sim import Machine, RandomScheduler, RoundRobinScheduler
from repro.sim.introspect import (
    ConflictIndex,
    Footprint,
    LOCAL_FOOTPRINT,
    footprints_conflict,
)


def _lane(ctx, base, records):
    for record in range(records):
        yield from ctx.store(base + 8 * (record % 8), record + 1)
        yield from ctx.persist_barrier()


def _disjoint_machine(scheduler, lanes=6, records=8):
    machine = Machine(scheduler=scheduler)
    base = machine.persistent_heap.malloc(lanes * 64)
    for lane in range(lanes):
        machine.spawn(_lane, base + lane * 64, records)
    return machine


def _projection(trace, thread):
    return [
        (event.kind, event.addr, event.value)
        for event in trace
        if event.thread == thread
    ]


class TestBulkEquivalence:
    def test_disjoint_lanes_same_projections_and_analysis(self):
        fine = _disjoint_machine(RoundRobinScheduler())
        fine.run()
        bulk = _disjoint_machine(RoundRobinScheduler())
        bulk.run(bulk_quantum=64)
        for thread in range(6):
            assert _projection(bulk.trace, thread) == _projection(
                fine.trace, thread
            )
        for model in ("epoch", "strict"):
            a = analyze(fine.trace, model)
            b = analyze(bulk.trace, model)
            assert (a.critical_path, a.persist_count) == (
                b.critical_path,
                b.persist_count,
            )

    def test_bulk_quantum_one_is_plain_scheduling(self):
        fine = _disjoint_machine(RandomScheduler(seed=3))
        fine.run()
        unit = _disjoint_machine(RandomScheduler(seed=3))
        unit.run(bulk_quantum=1)
        assert list(unit.trace) == list(fine.trace)

    def test_bulk_run_is_deterministic(self):
        first = _disjoint_machine(RandomScheduler(seed=5))
        first.run(bulk_quantum=16)
        second = _disjoint_machine(RandomScheduler(seed=5))
        second.run(bulk_quantum=16)
        assert list(first.trace) == list(second.trace)

    def test_conflicting_rmws_still_atomic(self):
        """Shared-counter RMWs: bulk mode must not lose increments."""

        def incr(ctx, addr, times):
            for _ in range(times):
                yield from ctx.fetch_add(addr, 1)

        machine = Machine(scheduler=RandomScheduler(seed=11))
        addr = machine.persistent_heap.malloc(8)
        for _ in range(4):
            machine.spawn(incr, addr, 10)
        machine.run(bulk_quantum=8)
        assert machine.memory.read(addr, 8) == 40

    def test_waiters_wake_under_bulk(self):
        """A bulk-stepped producer still releases a waiting consumer."""

        def producer(ctx, data, flag):
            for index in range(8):
                yield from ctx.store(data + 8 * index, index + 1)
            yield from ctx.store(flag, 1, sync=True)

        def consumer(ctx, data, flag):
            yield from ctx.wait_equals(flag, 1, sync=True)
            value = yield from ctx.load(data)
            assert value == 1

        machine = Machine(scheduler=RoundRobinScheduler())
        data = machine.persistent_heap.malloc(64)
        flag = machine.volatile_heap.malloc(8)
        machine.spawn(producer, data, flag)
        machine.spawn(consumer, data, flag)
        machine.run(bulk_quantum=32)
        assert all(t.state.value == "finished" for t in machine.threads)

    def test_invalid_quantum_rejected(self):
        machine = _disjoint_machine(RoundRobinScheduler())
        with pytest.raises(SimulationError):
            machine.run(bulk_quantum=0)

    def test_max_steps_respected_in_bulk(self):
        """A bulk quantum must not overshoot the step budget."""
        machine = _disjoint_machine(RoundRobinScheduler())
        with pytest.raises(SimulationError):
            machine.run(max_steps=10, bulk_quantum=64)
        assert machine._steps == 10


class TestTsoBulk:
    def test_tso_bulk_preserves_drain_totals(self):
        """Bulk stepping on TSO: buffers still drain, memory converges."""

        def writer(ctx, base):
            for index in range(6):
                yield from ctx.store(base + 8 * index, index + 1)
            yield from ctx.fence()

        machine = Machine(
            scheduler=RandomScheduler(seed=2), consistency="tso"
        )
        base = machine.persistent_heap.malloc(128)
        machine.spawn(writer, base)
        machine.spawn(writer, base + 64)
        machine.run(bulk_quantum=16)
        for lane in range(2):
            for index in range(6):
                assert machine.memory.read(base + lane * 64 + 8 * index, 8) == (
                    index + 1
                )


class TestConflictPrimitives:
    def test_local_footprints_never_conflict(self):
        write = Footprint(writes=((0, 8, True),))
        assert not footprints_conflict(LOCAL_FOOTPRINT, write)
        assert not footprints_conflict(write, LOCAL_FOOTPRINT)

    def test_read_read_is_independent(self):
        a = Footprint(reads=((0, 8, True),))
        b = Footprint(reads=((0, 8, True),))
        assert not footprints_conflict(a, b)

    def test_write_overlap_conflicts(self):
        a = Footprint(writes=((0, 8, True),))
        b = Footprint(reads=((4, 4, True),))
        assert footprints_conflict(a, b)
        assert footprints_conflict(b, a)

    def test_resource_tokens_conflict(self):
        a = Footprint(resources=("heap:persistent",))
        b = Footprint(resources=("heap:persistent",))
        c = Footprint(resources=("heap:volatile",))
        assert footprints_conflict(a, b)
        assert not footprints_conflict(a, c)

    def test_index_matches_pairwise_conflicts(self):
        others = [
            Footprint(writes=((64, 8, True),)),
            Footprint(reads=((128, 8, False),)),
            Footprint(resources=("heap:volatile",)),
        ]
        index = ConflictIndex(others)
        probes = [
            Footprint(reads=((64, 8, True),)),     # read vs write
            Footprint(writes=((128, 8, False),)),  # write vs read
            Footprint(resources=("heap:volatile",)),
            Footprint(reads=((256, 8, True),)),    # untouched block
            LOCAL_FOOTPRINT,
        ]
        for probe in probes:
            expected = any(
                footprints_conflict(probe, other) for other in others
            )
            assert index.conflicts(probe) == expected
