"""Lock correctness under many interleavings, for every lock algorithm."""

import pytest

from repro.sim import LOCK_KINDS, Machine, RandomScheduler, make_lock
from repro.trace import EventKind, validate

ALL_KINDS = sorted(LOCK_KINDS)


def run_counter_workload(kind, threads=4, increments=30, seed=0):
    """N threads increment a shared counter under one lock."""
    machine = Machine(scheduler=RandomScheduler(seed=seed))
    counter = machine.volatile_heap.malloc(8)
    in_section = machine.volatile_heap.malloc(8)
    lock = make_lock(machine, kind)

    def body(ctx, n):
        violations = 0
        for _ in range(n):
            yield from lock.acquire(ctx)
            # Mutual exclusion probe: flag must be clear on entry.
            flag = yield from ctx.load(in_section)
            if flag:
                violations += 1
            yield from ctx.store(in_section, 1)
            value = yield from ctx.load(counter)
            yield from ctx.store(counter, value + 1)
            yield from ctx.store(in_section, 0)
            yield from lock.release(ctx)
        return violations

    spawned = [machine.spawn(body, increments) for _ in range(threads)]
    trace = machine.run()
    return machine, counter, trace, spawned


class TestMutualExclusion:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_counter_is_exact(self, kind, seed):
        machine, counter, trace, threads = run_counter_workload(
            kind, seed=seed
        )
        assert machine.memory.read(counter, 8) == 4 * 30
        assert all(t.result == 0 for t in threads)
        validate(trace)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_single_thread_reacquire(self, kind):
        machine = Machine(scheduler=RandomScheduler(seed=3))
        lock = make_lock(machine, kind)
        cell = machine.volatile_heap.malloc(8)

        def body(ctx):
            for i in range(5):
                yield from lock.acquire(ctx)
                yield from ctx.store(cell, i)
                yield from lock.release(ctx)

        machine.spawn(body)
        machine.run()
        assert machine.memory.read(cell, 8) == 4

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_two_locks_do_not_interfere(self, kind):
        machine = Machine(scheduler=RandomScheduler(seed=7))
        lock_a = make_lock(machine, kind)
        lock_b = make_lock(machine, kind)
        cell_a = machine.volatile_heap.malloc(8)
        cell_b = machine.volatile_heap.malloc(8)

        def body(ctx, lock, cell, n):
            for _ in range(n):
                yield from lock.acquire(ctx)
                value = yield from ctx.load(cell)
                yield from ctx.store(cell, value + 1)
                yield from lock.release(ctx)

        machine.spawn(body, lock_a, cell_a, 20)
        machine.spawn(body, lock_a, cell_a, 20)
        machine.spawn(body, lock_b, cell_b, 20)
        machine.spawn(body, lock_b, cell_b, 20)
        machine.run()
        assert machine.memory.read(cell_a, 8) == 40
        assert machine.memory.read(cell_b, 8) == 40


class TestConflictStructure:
    def test_mcs_handoff_is_store_then_load(self):
        """MCS hand-off: releaser stores the successor's flag, which the
        successor's blocking load observes — the conflict edge persist
        ordering relies on."""
        machine = Machine(scheduler=RandomScheduler(seed=2))
        lock = make_lock(machine, "mcs")
        cell = machine.volatile_heap.malloc(8)

        def body(ctx, n):
            for _ in range(n):
                yield from lock.acquire(ctx)
                value = yield from ctx.load(cell)
                yield from ctx.store(cell, value + 1)
                yield from lock.release(ctx)

        for _ in range(3):
            machine.spawn(body, 10)
        trace = machine.run()
        # Find a hand-off: a store of 0 to a locked flag followed later by
        # a load of 0 at the same address from a different thread.
        handoffs = 0
        last_store = {}
        for event in trace:
            if event.kind is EventKind.STORE and event.value == 0:
                last_store[event.addr] = event
            elif (
                event.kind is EventKind.LOAD
                and event.value == 0
                and event.addr in last_store
                and last_store[event.addr].thread != event.thread
            ):
                handoffs += 1
                del last_store[event.addr]
        assert handoffs > 0

    def test_unknown_lock_kind_rejected(self):
        machine = Machine()
        with pytest.raises(ValueError):
            make_lock(machine, "hle")

    def test_registry_matches_factories(self):
        machine = Machine()
        for kind in ALL_KINDS:
            lock = make_lock(machine, kind)
            assert lock.__class__ is LOCK_KINDS[kind]
