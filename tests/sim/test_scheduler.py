"""Unit tests for interleaving policies."""

import pytest

from repro.sim import (
    RandomScheduler,
    RoundRobinScheduler,
    StridedScheduler,
)


class TestRoundRobin:
    def test_cycles_in_id_order(self):
        scheduler = RoundRobinScheduler()
        picks = [scheduler.pick([0, 1, 2]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_blocked_threads(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.pick([0, 2]) == 0
        assert scheduler.pick([0, 2]) == 2
        assert scheduler.pick([0, 2]) == 0

    def test_single_runnable(self):
        scheduler = RoundRobinScheduler()
        assert [scheduler.pick([3]) for _ in range(3)] == [3, 3, 3]


class TestRandom:
    def test_deterministic_per_seed(self):
        a = RandomScheduler(seed=4)
        b = RandomScheduler(seed=4)
        runnable = [0, 1, 2, 3]
        assert [a.pick(runnable) for _ in range(50)] == [
            b.pick(runnable) for _ in range(50)
        ]

    def test_covers_all_threads(self):
        scheduler = RandomScheduler(seed=0)
        picks = {scheduler.pick([0, 1, 2, 3]) for _ in range(200)}
        assert picks == {0, 1, 2, 3}

    def test_only_picks_runnable(self):
        scheduler = RandomScheduler(seed=1)
        for _ in range(100):
            assert scheduler.pick([2, 5]) in (2, 5)


class TestStrided:
    def test_runs_stride_consecutive_ops(self):
        scheduler = StridedScheduler(stride=4, seed=0)
        picks = [scheduler.pick([0, 1]) for _ in range(8)]
        assert picks[0:4] == [picks[0]] * 4
        assert picks[4:8] == [picks[4]] * 4

    def test_switches_when_current_blocked(self):
        scheduler = StridedScheduler(stride=100, seed=0)
        first = scheduler.pick([0, 1])
        other = 1 - first
        # Current thread no longer runnable: must switch immediately.
        assert scheduler.pick([other]) == other

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            StridedScheduler(stride=0)
