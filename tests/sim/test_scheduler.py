"""Unit tests for interleaving policies."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    SCHEDULER_KINDS,
    ChoiceRecordingScheduler,
    RandomScheduler,
    ReplayScheduler,
    RoundRobinScheduler,
    StridedScheduler,
    make_scheduler,
)


class TestRoundRobin:
    def test_cycles_in_id_order(self):
        scheduler = RoundRobinScheduler()
        picks = [scheduler.pick([0, 1, 2]) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_blocked_threads(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.pick([0, 2]) == 0
        assert scheduler.pick([0, 2]) == 2
        assert scheduler.pick([0, 2]) == 0

    def test_single_runnable(self):
        scheduler = RoundRobinScheduler()
        assert [scheduler.pick([3]) for _ in range(3)] == [3, 3, 3]

    def test_wraps_past_highest_id(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.pick([1, 4]) == 1
        assert scheduler.pick([1, 4]) == 4
        assert scheduler.pick([1, 4]) == 1

    def test_last_pick_leaving_runnable_set(self):
        scheduler = RoundRobinScheduler()
        assert scheduler.pick([0, 1, 2]) == 0
        assert scheduler.pick([0, 1, 2]) == 1
        # Thread 1 blocks: the next id greater than 1 is still chosen.
        assert scheduler.pick([0, 2]) == 2
        assert scheduler.pick([0, 2]) == 0

    def test_matches_linear_scan_reference(self):
        """Bisect pick-order regression: identical to the historical
        linear scan (smallest id greater than the previous choice, else
        the smallest runnable id) on random sorted runnable sets."""
        import random

        rng = random.Random(0)
        scheduler = RoundRobinScheduler()
        last = -1
        for _ in range(500):
            runnable = sorted(
                rng.sample(range(12), rng.randint(1, 12))
            )
            expected = next(
                (tid for tid in runnable if tid > last), runnable[0]
            )
            pick = scheduler.pick(runnable)
            assert pick == expected, (runnable, last)
            last = pick


class TestRandom:
    def test_deterministic_per_seed(self):
        a = RandomScheduler(seed=4)
        b = RandomScheduler(seed=4)
        runnable = [0, 1, 2, 3]
        assert [a.pick(runnable) for _ in range(50)] == [
            b.pick(runnable) for _ in range(50)
        ]

    def test_covers_all_threads(self):
        scheduler = RandomScheduler(seed=0)
        picks = {scheduler.pick([0, 1, 2, 3]) for _ in range(200)}
        assert picks == {0, 1, 2, 3}

    def test_only_picks_runnable(self):
        scheduler = RandomScheduler(seed=1)
        for _ in range(100):
            assert scheduler.pick([2, 5]) in (2, 5)


class TestStrided:
    def test_runs_stride_consecutive_ops(self):
        scheduler = StridedScheduler(stride=4, seed=0)
        picks = [scheduler.pick([0, 1]) for _ in range(8)]
        assert picks[0:4] == [picks[0]] * 4
        assert picks[4:8] == [picks[4]] * 4

    def test_switches_when_current_blocked(self):
        scheduler = StridedScheduler(stride=100, seed=0)
        first = scheduler.pick([0, 1])
        other = 1 - first
        # Current thread no longer runnable: must switch immediately.
        assert scheduler.pick([other]) == other

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            StridedScheduler(stride=0)

    def test_quantum_resets_when_thread_removed_mid_quantum(self):
        """A thread removed from ``runnable`` mid-quantum abandons its
        leftover quantum: the replacement gets a full stride, and so does
        the original thread when it is eventually re-picked."""
        scheduler = StridedScheduler(stride=4, seed=0)
        first = scheduler.pick([0, 1])
        assert scheduler.pick([0, 1]) == first  # mid-quantum (2 of 4)
        other = 1 - first
        # ``first`` blocks with two picks left; the switch must grant
        # ``other`` a full four-pick quantum, not the stale remainder.
        picks = [scheduler.pick([other]) for _ in range(4)]
        assert picks == [other] * 4
        # ``first`` is runnable again; with ``other`` exhausted the next
        # dispatch of ``first`` restarts at a full quantum too.
        resumed = [scheduler.pick([first]) for _ in range(4)]
        assert resumed == [first] * 4

    def test_interrupted_quantum_never_resumes(self):
        """After an interruption the old counter is dead: consecutive
        same-thread runs are always full quanta, never a stale leftover
        shared across picks."""
        scheduler = StridedScheduler(stride=3, seed=2)
        current = scheduler.pick([0, 1, 2])
        scheduler.pick([0, 1, 2])  # 2 of 3 consumed
        blocked_set = [tid for tid in (0, 1, 2) if tid != current]
        replacement = scheduler.pick(blocked_set)
        # Replacement's quantum is exactly stride long from its dispatch.
        assert [scheduler.pick(blocked_set) for _ in range(2)] == (
            [replacement] * 2
        )
        runs, last, length = [], None, 0
        for _ in range(60):
            pick = scheduler.pick([0, 1, 2])
            if pick == last:
                length += 1
            else:
                if last is not None:
                    runs.append(length)
                last, length = pick, 1
        # Every completed run of consecutive picks is at most one stride
        # (adjacent same-thread quanta may merge into multiples of 3).
        assert all(run % 3 == 0 or run <= 3 for run in runs)


class TestChoiceRecording:
    def test_records_inner_choices(self):
        inner = RandomScheduler(seed=9)
        recorder = ChoiceRecordingScheduler(RandomScheduler(seed=9))
        expected = [inner.pick([0, 1, 2]) for _ in range(30)]
        observed = [recorder.pick([0, 1, 2]) for _ in range(30)]
        assert observed == expected
        assert recorder.choices == expected


class TestReplay:
    def test_replays_recording_exactly(self):
        recorder = ChoiceRecordingScheduler(RandomScheduler(seed=3))
        picks = [recorder.pick([0, 1]) for _ in range(20)]
        replay = ReplayScheduler(recorder.choices)
        assert [replay.pick([0, 1]) for _ in range(20)] == picks
        assert replay.steps_replayed == 20

    def test_divergent_choice_rejected(self):
        replay = ReplayScheduler([1])
        with pytest.raises(SimulationError):
            replay.pick([0, 2])

    def test_exhausted_recording_rejected(self):
        replay = ReplayScheduler([0])
        assert replay.pick([0]) == 0
        with pytest.raises(SimulationError):
            replay.pick([0])


class TestRegistry:
    @pytest.mark.parametrize("kind", SCHEDULER_KINDS)
    def test_every_kind_constructs_and_picks(self, kind):
        scheduler = make_scheduler(kind, seed=5)
        assert scheduler.pick([0, 1, 2]) in (0, 1, 2)

    def test_same_seed_same_schedule(self):
        for kind in SCHEDULER_KINDS:
            a, b = make_scheduler(kind, seed=7), make_scheduler(kind, seed=7)
            assert [a.pick([0, 1, 2]) for _ in range(40)] == [
                b.pick([0, 1, 2]) for _ in range(40)
            ]

    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError):
            make_scheduler("fifo")
