"""Machine-level semantics of the x86 flush/fence family.

Pins how ``clflush``/``clflushopt``/``clwb``/``sfence`` interact with
the TSO store buffer: flushes issued while stores are buffered join the
FIFO behind them (their memory-order point is their drain), flushes on
an empty buffer take effect immediately, loads may overtake pending
flushes (x86 orders flushes against stores and fences, not loads), and
the SC machine emits everything at execute time.
"""

import pytest

from repro.sim import Machine, Scheduler
from repro.trace import EventKind, FLUSH_KINDS, validate

from tests.sim.test_tso import (
    DrainEagerScheduler,
    DrainLastScheduler,
    tso_machine,
)


def sc_machine():
    return Machine(scheduler=DrainLastScheduler(), consistency="sc")


def kinds_in_order(trace):
    return [
        e.kind
        for e in trace
        if e.is_access or e.is_flush or e.kind is EventKind.SFENCE
    ]


class TestScMachine:
    def test_flushes_emit_immediately(self):
        machine = sc_machine()
        cell = machine.persistent_heap.malloc(64)

        def body(ctx):
            yield from ctx.store(cell, 1)
            yield from ctx.clflush(cell)
            yield from ctx.clflushopt(cell)
            yield from ctx.clwb(cell)
            yield from ctx.sfence()

        machine.spawn(body)
        trace = machine.run()
        validate(trace)
        assert kinds_in_order(trace) == [
            EventKind.STORE,
            EventKind.CLFLUSH,
            EventKind.CLFLUSH_OPT,
            EventKind.CLWB,
            EventKind.SFENCE,
        ]

    def test_flush_events_carry_range(self):
        machine = sc_machine()
        cell = machine.persistent_heap.malloc(64)

        def body(ctx):
            yield from ctx.clwb(cell + 8, 4)

        machine.spawn(body)
        trace = machine.run()
        flush, = [e for e in trace if e.is_flush]
        assert (flush.addr, flush.size) == (cell + 8, 4)


class TestTsoBuffering:
    def test_flush_queues_behind_buffered_store(self):
        """Under DrainLast the store and its flush drain after the
        program ran; the flush's trace position is its drain, and it
        stays FIFO-after the store it covers."""
        machine = tso_machine()
        cell = machine.persistent_heap.malloc(64)

        def body(ctx):
            yield from ctx.store(cell, 1)
            yield from ctx.clflushopt(cell)
            yield from ctx.mark("issued")

        machine.spawn(body)
        trace = machine.run()
        validate(trace)
        order = [
            (e.kind, e.info) for e in trace
        ]
        mark_at = order.index((EventKind.MARK, "issued"))
        store_at = order.index((EventKind.STORE, ""))
        flush_at = order.index((EventKind.CLFLUSH_OPT, ""))
        # Both drained after the body finished issuing, store first.
        assert mark_at < store_at < flush_at

    def test_flush_on_empty_buffer_is_immediate(self):
        machine = tso_machine()
        cell = machine.persistent_heap.malloc(64)

        def body(ctx):
            yield from ctx.clflush(cell)
            yield from ctx.mark("after")

        machine.spawn(body)
        trace = machine.run()
        order = [(e.kind, e.info) for e in trace]
        # No buffered store: the flush event precedes the next marker.
        assert order.index((EventKind.CLFLUSH, "")) < order.index(
            (EventKind.MARK, "after")
        )

    def test_load_overtakes_pending_flush(self):
        """x86 does not order loads after clflushopt: a load issued
        after the flush can read (and complete) while the flush is
        still buffered."""
        machine = tso_machine()
        cell = machine.persistent_heap.malloc(64)
        other = machine.volatile_heap.malloc(8)
        machine.memory.write(other, 8, 7)

        def body(ctx):
            yield from ctx.store(cell, 1)
            yield from ctx.clflushopt(cell)
            value = yield from ctx.load(other)
            return value

        thread = machine.spawn(body)
        trace = machine.run()
        assert thread.result == 7
        order = [e.kind for e in trace if e.is_access or e.is_flush]
        assert order.index(EventKind.LOAD) < order.index(
            EventKind.CLFLUSH_OPT
        )

    def test_sfence_marker_drains_with_buffer(self):
        machine = tso_machine()
        cell = machine.persistent_heap.malloc(64)

        def body(ctx):
            yield from ctx.store(cell, 1)
            yield from ctx.sfence()

        machine.spawn(body)
        trace = machine.run()
        validate(trace)
        kinds = [
            e.kind
            for e in trace
            if e.is_access or e.kind is EventKind.SFENCE
        ]
        assert kinds == [EventKind.STORE, EventKind.SFENCE]

    def test_eager_drain_matches_sc_order(self):
        """DrainEager drains every entry as soon as it appears, so the
        event order matches the SC machine's."""

        def program(machine):
            cell = machine.persistent_heap.malloc(64)

            def body(ctx):
                yield from ctx.store(cell, 1)
                yield from ctx.clwb(cell)
                yield from ctx.sfence()
                yield from ctx.store(cell, 2)

            machine.spawn(body)
            return machine.run()

        sc_trace = program(sc_machine())
        tso_trace = program(
            Machine(scheduler=DrainEagerScheduler(), consistency="tso")
        )
        assert kinds_in_order(sc_trace) == kinds_in_order(tso_trace)

    def test_flush_kinds_are_not_accesses(self):
        machine = sc_machine()
        cell = machine.persistent_heap.malloc(64)

        def body(ctx):
            yield from ctx.clflush(cell)

        machine.spawn(body)
        trace = machine.run()
        flush, = [e for e in trace if e.kind in FLUSH_KINDS]
        assert flush.is_flush and not flush.is_access
