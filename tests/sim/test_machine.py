"""Unit tests for the simulated machine and thread trampoline."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.memory import layout
from repro.sim import Machine, RoundRobinScheduler, RandomScheduler
from repro.trace import EventKind, validate


def make_machine(**kwargs):
    kwargs.setdefault("scheduler", RoundRobinScheduler())
    return Machine(**kwargs)


class TestBasicExecution:
    def test_single_thread_load_store(self):
        machine = make_machine()
        cell = machine.volatile_heap.malloc(8)

        def body(ctx):
            yield from ctx.store(cell, 7)
            value = yield from ctx.load(cell)
            return value

        thread = machine.spawn(body)
        machine.run()
        assert thread.result == 7

    def test_trace_records_thread_lifecycle(self):
        machine = make_machine()

        def body(ctx):
            yield from ctx.mark("hello")

        machine.spawn(body)
        trace = machine.run()
        kinds = [event.kind for event in trace]
        assert kinds == [
            EventKind.THREAD_BEGIN,
            EventKind.MARK,
            EventKind.THREAD_END,
        ]

    def test_persistent_flag_set_by_region(self):
        machine = make_machine()
        pcell = machine.persistent_heap.malloc(8)
        vcell = machine.volatile_heap.malloc(8)

        def body(ctx):
            yield from ctx.store(pcell, 1)
            yield from ctx.store(vcell, 1)

        machine.spawn(body)
        trace = machine.run()
        stores = [e for e in trace if e.kind is EventKind.STORE]
        assert [e.persistent for e in stores] == [True, False]

    def test_spawn_rejects_plain_function(self):
        machine = make_machine()

        def not_a_generator(ctx):
            return 42

        with pytest.raises(SimulationError):
            machine.spawn(not_a_generator)

    def test_thread_result_propagates(self):
        machine = make_machine()

        def body(ctx, value):
            yield from ctx.mark("x")
            return value * 2

        threads = [machine.spawn(body, i) for i in range(4)]
        machine.run()
        assert [t.result for t in threads] == [0, 2, 4, 6]

    def test_max_steps_guard(self):
        machine = make_machine()
        cell = machine.volatile_heap.malloc(8)

        def spinner(ctx):
            while True:
                yield from ctx.load(cell)

        machine.spawn(spinner)
        with pytest.raises(SimulationError):
            machine.run(max_steps=100)


class TestAtomics:
    def test_cas_success_traced_as_rmw(self):
        machine = make_machine()
        cell = machine.volatile_heap.malloc(8)

        def body(ctx):
            ok, observed = yield from ctx.cas(cell, 0, 5)
            return ok, observed

        thread = machine.spawn(body)
        trace = machine.run()
        assert thread.result == (True, 0)
        assert any(e.kind is EventKind.RMW for e in trace)

    def test_cas_failure_traced_as_load(self):
        machine = make_machine()
        cell = machine.volatile_heap.malloc(8)
        machine.memory.write(cell, 8, 9)

        def body(ctx):
            ok, observed = yield from ctx.cas(cell, 0, 5)
            return ok, observed

        thread = machine.spawn(body)
        trace = machine.run()
        assert thread.result == (False, 9)
        assert not any(e.kind is EventKind.RMW for e in trace)
        assert machine.memory.read(cell, 8) == 9

    def test_swap_returns_old(self):
        machine = make_machine()
        cell = machine.volatile_heap.malloc(8)
        machine.memory.write(cell, 8, 3)

        def body(ctx):
            old = yield from ctx.swap(cell, 10)
            return old

        thread = machine.spawn(body)
        machine.run()
        assert thread.result == 3
        assert machine.memory.read(cell, 8) == 10

    def test_fetch_add_wraps_at_size(self):
        machine = make_machine()
        cell = machine.volatile_heap.malloc(8)
        machine.memory.write(cell, 8, (1 << 64) - 1)

        def body(ctx):
            old = yield from ctx.fetch_add(cell, 1)
            return old

        thread = machine.spawn(body)
        machine.run()
        assert thread.result == (1 << 64) - 1
        assert machine.memory.read(cell, 8) == 0

    def test_concurrent_fetch_add_is_atomic(self):
        machine = Machine(scheduler=RandomScheduler(seed=5))
        cell = machine.volatile_heap.malloc(8)

        def body(ctx, n):
            for _ in range(n):
                yield from ctx.fetch_add(cell, 1)

        for _ in range(4):
            machine.spawn(body, 50)
        machine.run()
        assert machine.memory.read(cell, 8) == 200


class TestWaiting:
    def test_wait_until_blocks_then_resumes(self):
        machine = make_machine()
        flag = machine.volatile_heap.malloc(8)

        def waiter(ctx):
            value = yield from ctx.wait_equals(flag, 1)
            return value

        def setter(ctx):
            for _ in range(5):
                yield from ctx.mark("busy")
            yield from ctx.store(flag, 1)

        wait_thread = machine.spawn(waiter)
        machine.spawn(setter)
        trace = machine.run()
        assert wait_thread.result == 1
        validate(trace)

    def test_wait_emits_failed_then_successful_load(self):
        machine = make_machine()
        flag = machine.volatile_heap.malloc(8)

        def waiter(ctx):
            yield from ctx.wait_equals(flag, 1)

        def setter(ctx):
            yield from ctx.store(flag, 1)

        machine.spawn(waiter)
        machine.spawn(setter)
        trace = machine.run()
        loads = [
            e for e in trace if e.kind is EventKind.LOAD and e.addr == flag
        ]
        assert [e.value for e in loads] == [0, 1]

    def test_deadlock_detected(self):
        machine = make_machine()
        flag = machine.volatile_heap.malloc(8)

        def waiter(ctx):
            yield from ctx.wait_equals(flag, 1)

        machine.spawn(waiter)
        with pytest.raises(DeadlockError):
            machine.run()

    def test_wait_satisfied_immediately(self):
        machine = make_machine()
        flag = machine.volatile_heap.malloc(8)
        machine.memory.write(flag, 8, 1)

        def waiter(ctx):
            value = yield from ctx.wait_equals(flag, 1)
            return value

        thread = machine.spawn(waiter)
        trace = machine.run()
        assert thread.result == 1
        loads = [e for e in trace if e.kind is EventKind.LOAD]
        assert len(loads) == 1


class TestHeapOps:
    def test_malloc_and_free_traced(self):
        machine = make_machine()

        def body(ctx):
            addr = yield from ctx.malloc_persistent(64)
            yield from ctx.store(addr, 1)
            yield from ctx.free_persistent(addr)
            return addr

        thread = machine.spawn(body)
        trace = machine.run()
        assert machine.memory.is_persistent(thread.result)
        kinds = [e.kind for e in trace]
        assert EventKind.MALLOC in kinds and EventKind.FREE in kinds

    def test_bulk_store_load_roundtrip(self):
        machine = make_machine()
        base = machine.volatile_heap.malloc(128)
        payload = bytes(range(100))

        def body(ctx):
            yield from ctx.store_bytes(base + 4, payload)
            data = yield from ctx.load_bytes(base + 4, 100)
            return data

        thread = machine.spawn(body)
        trace = machine.run()
        assert thread.result == payload
        validate(trace)
        # Unaligned 100-byte write: 4 + 12*8 bytes... pieces respect words.
        stores = [e for e in trace if e.kind is EventKind.STORE]
        assert sum(e.size for e in stores) == 100
        for e in stores:
            assert e.size <= layout.WORD_SIZE


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def build():
            machine = Machine(scheduler=RandomScheduler(seed=9))
            cell = machine.volatile_heap.malloc(8)

            def body(ctx, n):
                for _ in range(n):
                    yield from ctx.fetch_add(cell, 1)

            for _ in range(3):
                machine.spawn(body, 10)
            return machine.run()

        first, second = build(), build()
        assert [
            (e.thread, e.kind, e.addr, e.value) for e in first
        ] == [(e.thread, e.kind, e.addr, e.value) for e in second]

    def test_different_seeds_interleave_differently(self):
        def build(seed):
            machine = Machine(scheduler=RandomScheduler(seed=seed))
            cell = machine.volatile_heap.malloc(8)

            def body(ctx, n):
                for _ in range(n):
                    yield from ctx.fetch_add(cell, 1)

            for _ in range(3):
                machine.spawn(body, 10)
            return [e.thread for e in machine.run()]

        assert build(1) != build(2)
