"""Machine snapshot/restore: the prefix-sharing replay contract.

A restore must be *perfectly* invisible to the rest of an execution:
memory, trace, heaps, thread bookkeeping, and any registered
Python-side library state all rewind, and re-running from the restored
point reproduces the original execution bit for bit.  The subtle part
is Python-side state read by thread bodies (lock qnode caches,
allocator cursors): restore resets it to its initial value and then
re-derives the snapshot-time value by replaying the global send log,
re-running the bodies' own Python code in the original interleaving.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import Machine
from repro.sim.scheduler import Scheduler
from repro.sim.sync import MCSLock


class FirstRunnableScheduler(Scheduler):
    """Stateless deterministic scheduler: always the lowest runnable id.

    Restore rewinds the machine but (by design) not the scheduler — the
    checker truncates its own ``ReplayableScheduler``.  A stateless
    policy makes post-restore re-runs reproduce the original schedule
    with no scheduler bookkeeping in the test.
    """

    def pick(self, runnable):
        return runnable[0]


def trace_signature(trace):
    return [repr(event) for event in trace]


def partial_run(machine, steps):
    """Advance ``steps`` scheduling steps, pausing between steps.

    ``Machine.run`` treats an exhausted step budget with live threads as
    an error; the machine is still in a consistent between-steps state,
    which is exactly where snapshots are taken.
    """
    try:
        machine.run(max_steps=steps)
    except SimulationError:
        pass


def counter_machine():
    """Two threads bump a shared persistent counter under an MCS lock."""
    machine = Machine(scheduler=FirstRunnableScheduler())
    lock = MCSLock(machine)
    cell = machine.persistent_heap.malloc(8)

    def body(ctx):
        for _ in range(2):
            yield from lock.acquire(ctx)
            value = yield from ctx.load(cell)
            yield from ctx.store(cell, value + 1)
            yield from lock.release(ctx)

    machine.spawn(body)
    machine.spawn(body)
    return machine, cell


class TestRestore:
    def test_restore_reproduces_execution_bit_for_bit(self):
        machine, cell = counter_machine()
        machine.enable_snapshots()
        partial_run(machine, 9)
        snap = machine.snapshot()
        first = trace_signature(machine.run())
        final = machine.memory.read(cell, 8)
        assert final == 4

        machine.restore(snap)
        second = trace_signature(machine.run())
        assert second == first
        assert machine.memory.read(cell, 8) == final

    def test_restore_rewinds_memory_trace_and_steps(self):
        machine, cell = counter_machine()
        machine.enable_snapshots()
        partial_run(machine, 6)
        snap = machine.snapshot()
        mark_len = len(machine.trace)
        mark_value = machine.memory.read(cell, 8)

        machine.run()
        assert len(machine.trace) > mark_len

        machine.restore(snap)
        assert len(machine.trace) == mark_len
        assert machine.memory.read(cell, 8) == mark_value

    def test_repeated_restores_from_one_snapshot(self):
        machine, cell = counter_machine()
        machine.enable_snapshots()
        partial_run(machine, 12)
        snap = machine.snapshot()
        runs = []
        for _ in range(3):
            machine.restore(snap)
            runs.append(trace_signature(machine.run()))
        assert runs[0] == runs[1] == runs[2]
        assert machine.memory.read(cell, 8) == 4

    def test_restore_rewinds_python_side_lock_state(self):
        """The MCS qnode cache is Python-side state: a restore that kept
        it would skip the qnode malloc on replay and desynchronise the
        send log.  Restoring to *before* the first acquire must re-run
        the full allocation path cleanly."""
        machine, cell = counter_machine()
        machine.enable_snapshots()
        snap = machine.snapshot()  # before any step: caches are empty
        machine.run()
        assert machine.memory.read(cell, 8) == 4

        machine.restore(snap)
        machine.run()
        assert machine.memory.read(cell, 8) == 4

    def test_restore_rewinds_heap_allocations(self):
        machine = Machine(scheduler=FirstRunnableScheduler())

        def body(ctx):
            addr = yield from ctx.malloc_persistent(64)
            yield from ctx.store(addr, 1)
            return addr

        machine.spawn(body)
        machine.enable_snapshots()
        snap = machine.snapshot()
        first_thread = machine.threads[0]
        machine.run()
        first_addr = first_thread.result

        machine.restore(snap)
        machine.run()
        assert machine.threads[0].result == first_addr

    def test_custom_registered_state_replays(self):
        """A body-visible Python-side counter registered via
        ``register_state`` must rewind with the machine."""
        machine = Machine(scheduler=FirstRunnableScheduler())
        cell = machine.volatile_heap.malloc(8)
        issued = []

        def del_tail(n):
            del issued[n:]

        machine.register_state(lambda: len(issued), del_tail)

        def body(ctx):
            ticket = len(issued)
            issued.append(ticket)
            yield from ctx.store(cell, ticket)

        machine.spawn(body)
        machine.spawn(body)
        machine.enable_snapshots()
        snap = machine.snapshot()
        machine.run()
        assert issued == [0, 1]

        machine.restore(snap)
        assert issued == []
        machine.run()
        assert issued == [0, 1]

    def test_register_state_after_first_step_raises(self):
        machine = Machine(scheduler=FirstRunnableScheduler())

        def body(ctx):
            yield from ctx.mark("step")

        machine.spawn(body)
        machine.enable_snapshots()
        partial_run(machine, 1)
        with pytest.raises(SimulationError):
            machine.register_state(lambda: None, lambda state: None)
