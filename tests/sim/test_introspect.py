"""Footprint introspection regressions (DPOR soundness contract).

A footprint must cover *every* effect a scheduling step can have on
shared machine state.  On TSO, mfence and the RMWs drain the whole
store buffer — including buffered clflush/clflushopt/clwb entries,
whose emission *reads* the flushed line (its position among other
threads' stores to that line decides which persists it orders).  These
tests pin that the drain-inheriting footprints claim those reads; a
fence whose buffer holds only a flush entry was once classified fully
local, hiding the flush-vs-remote-store race from DPOR.
"""

from repro.sim import Machine, ops
from repro.sim.introspect import next_footprint
from repro.sim.machine import _DRAIN_BASE

from tests.sim.test_tso import DrainLastScheduler


def flush_fence_machine():
    """One thread at ``store x; clflushopt y; mfence``, stepped until
    the store has drained: the buffer holds only the flush entry and
    the pending op is the fence."""
    machine = Machine(scheduler=DrainLastScheduler(), consistency="tso")
    x = machine.persistent_heap.malloc(64)
    y = machine.persistent_heap.malloc(64)

    def body(ctx):
        yield from ctx.store(x, 1)
        yield from ctx.clflushopt(y)
        yield from ctx.fence()

    machine.spawn(body)
    machine._step(0)  # THREAD_BEGIN; pending = Store x
    machine._step(0)  # buffer the store; pending = ClFlushOpt y
    machine._step(0)  # buffer the flush; pending = Fence
    return machine, x, y


class TestFenceFootprint:
    def test_fence_with_only_buffered_flush_is_not_local(self):
        machine, x, y = flush_fence_machine()
        machine._step(_DRAIN_BASE)  # drain the store: buffer = [flush y]
        thread = machine._threads[0]
        assert [entry[0] for entry in thread.store_buffer] == ["flush"]
        assert isinstance(thread.pending, ops.Fence)
        footprint = next_footprint(machine, 0)
        # The fence emits the buffered clflushopt: it reads line y, so
        # DPOR must see its race with another thread's store to y.
        assert not footprint.is_local
        assert (y, 8, True) in footprint.reads

    def test_fence_claims_both_buffered_stores_and_flushes(self):
        machine, x, y = flush_fence_machine()
        footprint = next_footprint(machine, 0)
        assert (x, 8, True) in footprint.writes
        assert (y, 8, True) in footprint.reads

    def test_rmw_footprint_includes_buffered_flush_reads(self):
        machine = Machine(scheduler=DrainLastScheduler(), consistency="tso")
        x = machine.persistent_heap.malloc(64)
        y = machine.persistent_heap.malloc(64)
        cell = machine.volatile_heap.malloc(8)

        def body(ctx):
            yield from ctx.store(x, 1)
            yield from ctx.clflushopt(y)
            yield from ctx.fetch_add(cell, 1)

        machine.spawn(body)
        machine._step(0)  # THREAD_BEGIN; pending = Store x
        machine._step(0)  # buffer the store; pending = ClFlushOpt y
        machine._step(0)  # buffer the flush; pending = FetchAdd
        thread = machine._threads[0]
        assert isinstance(thread.pending, ops.FetchAdd)
        footprint = next_footprint(machine, 0)
        # The atomic drains the buffer first (x86 lock prefix): it
        # writes the buffered store and emits (reads) the buffered
        # flush, in addition to its own target.
        assert (y, 8, True) in footprint.reads
        assert (x, 8, True) in footprint.writes
        assert any(addr == cell for addr, _, _ in footprint.writes)
