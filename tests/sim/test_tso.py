"""Tests for the TSO machine mode (store buffers, drains, fences)."""

import pytest

from repro.errors import SimulationError
from repro.sim import Machine, RandomScheduler, Scheduler, make_lock
from repro.trace import EventKind, validate
from repro.verify import count_schedules, explore_schedules


class DrainLastScheduler(Scheduler):
    """Prefer thread execution; drain buffers only when forced.

    Deterministically exposes maximal store-buffer delay — the schedule
    classic TSO litmus tests need.
    """

    def pick(self, runnable):
        threads = [tid for tid in runnable if tid < (1 << 20)]
        return min(threads) if threads else min(runnable)


class DrainEagerScheduler(Scheduler):
    """Drain at the first opportunity: behaves like SC."""

    def pick(self, runnable):
        drains = [tid for tid in runnable if tid >= (1 << 20)]
        return min(drains) if drains else min(runnable)


def tso_machine(scheduler=None):
    return Machine(
        scheduler=scheduler or DrainLastScheduler(), consistency="tso"
    )


class TestStoreBuffering:
    def test_store_invisible_until_drained(self):
        machine = tso_machine()
        flag = machine.volatile_heap.malloc(8)
        observed = []

        def writer(ctx):
            yield from ctx.store(flag, 1)
            yield from ctx.mark("wrote")

        def reader(ctx):
            value = yield from ctx.load(flag)
            observed.append(value)

        machine.spawn(writer)
        machine.spawn(reader)
        trace = machine.run()
        validate(trace)
        # DrainLast runs both threads to completion before any drain: the
        # reader saw 0 even though the writer's store "happened" first.
        assert observed == [0]
        assert machine.memory.read(flag, 8) == 1  # drained by the end

    def test_sb_litmus_both_read_zero(self):
        """The classic store-buffering litmus: forbidden under SC,
        observable under TSO."""
        machine = tso_machine()
        x = machine.volatile_heap.malloc(8)
        y = machine.volatile_heap.malloc(8)

        def body(ctx, mine, other):
            yield from ctx.store(mine, 1)
            value = yield from ctx.load(other)
            return value

        t0 = machine.spawn(body, x, y)
        t1 = machine.spawn(body, y, x)
        machine.run()
        assert (t0.result, t1.result) == (0, 0)

    def test_sc_machine_forbids_sb_outcome(self):
        """Same program, same scheduler, SC machine: at least one thread
        observes the other's store."""
        machine = Machine(scheduler=DrainLastScheduler(), consistency="sc")
        x = machine.volatile_heap.malloc(8)
        y = machine.volatile_heap.malloc(8)

        def body(ctx, mine, other):
            yield from ctx.store(mine, 1)
            value = yield from ctx.load(other)
            return value

        t0 = machine.spawn(body, x, y)
        t1 = machine.spawn(body, y, x)
        machine.run()
        assert (t0.result, t1.result) != (0, 0)

    def test_fence_restores_sc_outcome(self):
        machine = tso_machine()
        x = machine.volatile_heap.malloc(8)
        y = machine.volatile_heap.malloc(8)

        def body(ctx, mine, other):
            yield from ctx.store(mine, 1)
            yield from ctx.fence()
            value = yield from ctx.load(other)
            return value

        t0 = machine.spawn(body, x, y)
        t1 = machine.spawn(body, y, x)
        trace = machine.run()
        assert (t0.result, t1.result) != (0, 0)
        assert any(e.kind is EventKind.FENCE for e in trace)


class TestForwarding:
    def test_own_store_forwarded(self):
        machine = tso_machine()
        cell = machine.volatile_heap.malloc(8)

        def body(ctx):
            yield from ctx.store(cell, 7)
            value = yield from ctx.load(cell)
            return value

        thread = machine.spawn(body)
        trace = machine.run()
        assert thread.result == 7
        forwarded = [e for e in trace if e.info == "sb-forward"]
        assert len(forwarded) == 1
        validate(trace)  # forwarded loads are exempt from SC replay

    def test_newest_buffered_store_wins(self):
        machine = tso_machine()
        cell = machine.volatile_heap.malloc(8)

        def body(ctx):
            yield from ctx.store(cell, 1)
            yield from ctx.store(cell, 2)
            value = yield from ctx.load(cell)
            return value

        thread = machine.spawn(body)
        machine.run()
        assert thread.result == 2

    def test_partial_overlap_forwards_without_draining(self):
        """A wider load over a narrower buffered store splits: buffered
        bytes forward, the rest come from memory, and — the actual fix —
        the store stays buffered instead of being flushed to memory."""
        machine = tso_machine()
        cell = machine.volatile_heap.malloc(8)
        machine.memory.write(cell, 8, 0x1122334400000000)

        def body(ctx):
            yield from ctx.store(cell, 0xAABBCCDD, size=4)
            value = yield from ctx.load(cell, size=8)
            yield from ctx.mark("loaded")
            return value

        thread = machine.spawn(body)
        trace = machine.run()
        # Composed value: low 4 bytes from the buffer, high 4 from memory.
        assert thread.result == 0x11223344AABBCCDD
        mixed = [e for e in trace if e.info == "sb-mixed"]
        assert len(mixed) == 1 and mixed[0].kind is EventKind.LOAD
        # The store was still buffered when the load ran: under
        # DrainLast, its memory-order (drain) event comes after the
        # marker that follows the load in program order.
        order = [(e.kind, e.info) for e in trace]
        assert order.index((EventKind.STORE, "")) > order.index(
            (EventKind.MARK, "loaded")
        )
        validate(trace)  # sb-mixed loads are exempt from SC replay

    def test_partial_overlap_keeps_store_buffered(self):
        """Regression pin for the pre-fix behaviour, which drained the
        whole buffer on any partial overlap: probed right after the
        load, the store must still be in the buffer and memory must
        still hold the old bytes."""
        machine = tso_machine()
        cell = machine.volatile_heap.malloc(8)
        probes = []

        def body(ctx):
            yield from ctx.store(cell, 0xAABBCCDD, size=4)
            value = yield from ctx.load(cell, size=8)
            thread = machine.threads[0]
            probes.append(
                (
                    machine.buffered_bytes(thread, cell, 8),
                    machine.memory.read(cell, 8),
                )
            )
            return value

        thread = machine.spawn(body)
        machine.run()
        assert thread.result == 0xAABBCCDD
        (overlay, memory_value), = probes
        assert overlay == [0xDD, 0xCC, 0xBB, 0xAA, None, None, None, None]
        assert memory_value == 0  # nothing drained by the load
        assert machine.memory.read(cell, 8) == 0xAABBCCDD  # drained at end

    def test_rmw_drains_buffer_first(self):
        machine = tso_machine()
        cell = machine.volatile_heap.malloc(8)
        other = machine.volatile_heap.malloc(8)

        def body(ctx):
            yield from ctx.store(other, 5)
            old = yield from ctx.fetch_add(cell, 1)
            return old

        machine.spawn(body)
        trace = machine.run()
        # The buffered store to `other` must appear before the RMW.
        kinds = [
            (e.kind, e.addr) for e in trace if e.is_access
        ]
        assert kinds.index((EventKind.STORE, other)) < kinds.index(
            (EventKind.RMW, cell)
        )


class TestLifecycle:
    def test_thread_end_waits_for_drain(self):
        machine = tso_machine()
        cell = machine.volatile_heap.malloc(8)

        def body(ctx):
            yield from ctx.store(cell, 1)

        machine.spawn(body)
        trace = machine.run()
        validate(trace)
        events = [e.kind for e in trace]
        assert events.index(EventKind.STORE) < events.index(
            EventKind.THREAD_END
        )
        assert machine.memory.read(cell, 8) == 1

    def test_locks_correct_under_tso(self):
        machine = Machine(
            scheduler=RandomScheduler(seed=6), consistency="tso"
        )
        counter = machine.volatile_heap.malloc(8)
        lock = make_lock(machine, "mcs")

        def body(ctx, n):
            for _ in range(n):
                yield from lock.acquire(ctx)
                value = yield from ctx.load(counter)
                yield from ctx.store(counter, value + 1)
                yield from lock.release(ctx)

        for _ in range(3):
            machine.spawn(body, 20)
        trace = machine.run()
        validate(trace)
        assert machine.memory.read(counter, 8) == 60

    def test_unknown_consistency_rejected(self):
        with pytest.raises(SimulationError):
            Machine(consistency="rmo")

    def test_sc_default_has_no_buffers(self):
        machine = Machine()
        cell = machine.volatile_heap.malloc(8)

        def body(ctx):
            yield from ctx.store(cell, 1)

        machine.spawn(body)
        trace = machine.run()
        assert not any(e.info == "sb-forward" for e in trace)
        assert machine.memory.read(cell, 8) == 1


class TestBufferedBarriers:
    def test_persist_barrier_drains_in_store_order(self):
        """A persist barrier issued between two stores must appear
        between them in the trace (memory order), even though both
        stores were still buffered when it executed — epoch hardware
        tags epochs in program order."""
        machine = tso_machine()
        cell = machine.volatile_heap.malloc(16)
        pcell = machine.persistent_heap.malloc(16)

        def body(ctx):
            yield from ctx.store(pcell, 1)
            yield from ctx.persist_barrier()
            yield from ctx.store(pcell + 8, 2)

        machine.spawn(body)
        trace = machine.run()
        ordered = [
            (e.kind, e.addr)
            for e in trace
            if e.kind in (EventKind.STORE, EventKind.PERSIST_BARRIER)
        ]
        assert ordered == [
            (EventKind.STORE, pcell),
            (EventKind.PERSIST_BARRIER, 0),
            (EventKind.STORE, pcell + 8),
        ]

    def test_barrier_with_empty_buffer_emits_immediately(self):
        machine = tso_machine()

        def body(ctx):
            yield from ctx.persist_barrier()

        machine.spawn(body)
        trace = machine.run()
        assert any(e.kind is EventKind.PERSIST_BARRIER for e in trace)

    def test_epoch_semantics_preserved_on_tso(self):
        """The buffered barrier keeps data-before-head ordering intact
        under epoch analysis of the TSO memory order."""
        from repro.core import analyze

        def run(consistency):
            machine = Machine(
                scheduler=DrainLastScheduler(), consistency=consistency
            )
            pcell = machine.persistent_heap.malloc(128)

            def body(ctx):
                yield from ctx.store(pcell, 1)
                yield from ctx.persist_barrier()
                yield from ctx.store(pcell + 64, 2)

            machine.spawn(body)
            return machine.run()

        assert (
            analyze(run("tso"), "epoch").critical_path
            == analyze(run("sc"), "epoch").critical_path
            == 2
        )


class TestExplorationWithTso:
    def test_drain_agents_add_interleavings(self):
        def build_sc(scheduler):
            machine = Machine(scheduler=scheduler, consistency="sc")
            cell = machine.volatile_heap.malloc(16)

            def body(ctx, offset):
                yield from ctx.store(cell + offset, 1)

            machine.spawn(body, 0)
            machine.spawn(body, 8)
            return machine

        def build_tso(scheduler):
            machine = Machine(scheduler=scheduler, consistency="tso")
            cell = machine.volatile_heap.malloc(16)

            def body(ctx, offset):
                yield from ctx.store(cell + offset, 1)

            machine.spawn(body, 0)
            machine.spawn(body, 8)
            return machine

        assert count_schedules(build_tso, max_schedules=5000) > (
            count_schedules(build_sc)
        )

    def test_all_tso_schedules_complete(self):
        def build(scheduler):
            machine = Machine(scheduler=scheduler, consistency="tso")
            cell = machine.volatile_heap.malloc(8)

            def body(ctx):
                yield from ctx.store(cell, 1)
                value = yield from ctx.load(cell)
                return value

            machine.spawn(body)
            machine.spawn(body)
            return machine

        for trace, machine in explore_schedules(build, max_schedules=5000):
            for thread in machine.threads:
                assert thread.result == 1
                assert thread.state.value == "finished"
