"""Drain-agent edge cases (the satellite-2 hardening).

The machine trusts the scheduler to pick from the runnable set it was
handed; a scheduler (or a stale replay recording) that returns a drain
id for a thread with an empty buffer used to trip an internal
''popleft from an empty deque''.  Now it raises a diagnosable
:class:`SimulationError` naming the contract that was violated, and the
DRAINING bookkeeping is pinned by exhaustive exploration: no schedule
of a buffer-heavy program can reach the error through legal picks.
"""

import pytest

from repro.errors import SimulationError
from repro.sim import Machine, Scheduler
from repro.sim.machine import _DRAIN_BASE
from repro.trace import EventKind, validate
from repro.verify import explore_schedules

from tests.sim.test_tso import DrainLastScheduler


class _RogueDrainScheduler(Scheduler):
    """Returns a drain id that is not in the runnable set."""

    def __init__(self, rogue_id):
        self._rogue = rogue_id
        self._fired = False

    def pick(self, runnable):
        if not self._fired:
            self._fired = True
            return self._rogue
        return min(runnable)


class TestRogueDrainPicks:
    def test_empty_buffer_drain_is_diagnosed(self):
        machine = Machine(
            scheduler=_RogueDrainScheduler(_DRAIN_BASE), consistency="tso"
        )

        def body(ctx):
            yield from ctx.mark("alive")

        machine.spawn(body)
        with pytest.raises(SimulationError, match="runnable-set contract"):
            machine.run()

    def test_nonexistent_thread_drain_is_diagnosed(self):
        machine = Machine(
            scheduler=_RogueDrainScheduler(_DRAIN_BASE + 99),
            consistency="tso",
        )

        def body(ctx):
            yield from ctx.mark("alive")

        machine.spawn(body)
        with pytest.raises(SimulationError, match="nonexistent thread"):
            machine.run()


class TestDrainingBookkeeping:
    def test_draining_thread_finishes_after_last_entry(self):
        """A thread whose body ends with a buffered store (and a
        buffered flush behind it) finishes only once the drain agent
        empties the FIFO, and THREAD_END lands after both drains."""
        machine = Machine(
            scheduler=DrainLastScheduler(), consistency="tso"
        )
        cell = machine.persistent_heap.malloc(64)

        def body(ctx):
            yield from ctx.store(cell, 1)
            yield from ctx.clwb(cell)

        machine.spawn(body)
        trace = machine.run()
        validate(trace)
        kinds = [e.kind for e in trace]
        assert kinds.index(EventKind.THREAD_END) > kinds.index(
            EventKind.CLWB
        )
        assert kinds.index(EventKind.CLWB) > kinds.index(EventKind.STORE)

    def test_exhaustive_exploration_never_misdrains(self):
        """Every interleaving of a program mixing buffered stores,
        flushes, fences, an RMW, and a wait must execute without a
        drain-contract error — legal picks can never reach one."""
        flag_slot = {}

        def build(scheduler):
            machine = Machine(scheduler=scheduler, consistency="tso")
            cell = machine.persistent_heap.malloc(64)
            flag = machine.volatile_heap.malloc(8)
            flag_slot["addr"] = flag

            def writer(ctx):
                yield from ctx.store(cell, 1)
                yield from ctx.clflushopt(cell)
                yield from ctx.sfence()
                yield from ctx.store(flag, 1)

            def waiter(ctx):
                value = yield from ctx.wait_equals(flag, 1)
                old = yield from ctx.fetch_add(cell, 1)
                return (value, old)

            machine.spawn(writer)
            machine.spawn(waiter)
            return machine

        schedules = 0
        for trace, machine in explore_schedules(build, max_schedules=20_000):
            validate(trace)
            schedules += 1
        assert schedules > 1
