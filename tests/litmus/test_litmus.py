"""Litmus corpus and differential runner tests.

Pins the acceptance-critical facts: the corpus size and validity, the
genuine px86-vs-dpox86 and px86-vs-epoch disagreements, the
partial-forwarding witness outcome that the pre-fix TSO machine could
not produce, and bitset/graph domain agreement across the corpus.
"""

import pytest

from repro.litmus import (
    LitmusError,
    LitmusProgram,
    corpus_by_name,
    default_corpus,
    generate_programs,
    hand_written,
    run_corpus,
    run_program,
)
from repro.litmus.corpus import PARTIAL_X, PARTIAL_Y


def outcomes_of(report, model):
    """The (regs, mem) pairs a model allows, as comparable tuples."""
    return {
        (
            tuple(tuple(r) for r in o["regs"]),
            tuple(sorted(o["mem"].items())),
        )
        for o in report["outcomes"][model]
    }


class TestCorpus:
    def test_hand_written_all_validate(self):
        programs = hand_written()
        assert len(programs) >= 20
        for program in programs:
            program.validate()

    def test_default_corpus_size_and_unique_names(self):
        corpus = default_corpus()
        assert len(corpus) >= 20
        names = [p.name for p in corpus]
        assert len(set(names)) == len(names)
        assert corpus_by_name().keys() == set(names)

    def test_generator_is_deterministic(self):
        first = generate_programs(2014, 4)
        second = generate_programs(2014, 4)
        assert first == second
        different = generate_programs(2015, 4)
        assert first != different

    def test_validation_rejects_bad_programs(self):
        bad = LitmusProgram(
            name="bad",
            description="",
            threads=((("frobnicate", "x"),),),
            locations=("x",),
        )
        with pytest.raises(LitmusError, match="unknown op"):
            bad.validate()
        undeclared = LitmusProgram(
            name="bad2",
            description="",
            threads=((("store", "y", 1),),),
            locations=("x",),
        )
        with pytest.raises(LitmusError, match="undeclared location"):
            undeclared.validate()


class TestDisagreements:
    def test_px86_vs_dpox86_on_weak_flush(self):
        """mp-clflushopt: px86 allows flag=1 with x unpersisted (the
        weak flush never committed); dpox86 forbids exactly that."""
        program = corpus_by_name()["mp-clflushopt"]
        report = run_program(program, ("px86", "dpox86"))
        px86 = outcomes_of(report, "px86")
        dpox86 = outcomes_of(report, "dpox86")
        flag_without_x = {
            o
            for o in px86
            if dict(o[1]) == {"flag": 1, "x": 0}
        }
        assert flag_without_x
        assert not (flag_without_x & dpox86)
        assert dpox86 < px86

    def test_px86_vs_epoch_on_barrier(self):
        """mp-barrier: epoch orders x before flag; px86 lowers the
        barrier to an sfence with nothing pending, ordering nothing."""
        program = corpus_by_name()["mp-barrier"]
        report = run_program(program, ("epoch", "px86"))
        epoch = outcomes_of(report, "epoch")
        px86 = outcomes_of(report, "px86")
        flag_without_x = {
            o for o in px86 if dict(o[1]) == {"flag": 1, "x": 0}
        }
        assert flag_without_x
        assert not (flag_without_x & epoch)

    def test_clflush_agrees_across_x86_family(self):
        """mp-clflush: the synchronous flush makes px86 and dpox86
        coincide (clflush is the family's agreement point)."""
        program = corpus_by_name()["mp-clflush"]
        report = run_program(program, ("px86", "dpox86"))
        assert outcomes_of(report, "px86") == outcomes_of(report, "dpox86")
        assert not report["disagreements"]

    def test_committing_fence_closes_the_gap(self):
        """mp-clflushopt-sfence: with the fence the family agrees, and
        the dangerous flag-without-x outcome is gone."""
        program = corpus_by_name()["mp-clflushopt-sfence"]
        report = run_program(program, ("px86", "dpox86"))
        px86 = outcomes_of(report, "px86")
        assert px86 == outcomes_of(report, "dpox86")
        assert not any(dict(o[1]) == {"flag": 1, "x": 0} for o in px86)


class TestForwardingWitness:
    def test_partial_forward_outcome_present(self):
        """sb-partial-forward: both threads read their own partial
        store composed over zeros AND miss the peer's store — possible
        only if the partial-overlap load forwarded without draining.
        The pre-fix machine flushed the buffer on partial overlap,
        making each thread's store visible before the peer's load, so
        this register outcome could never appear."""
        program = corpus_by_name()["sb-partial-forward"]
        report = run_program(program, ("strict",))
        regs = {
            tuple(tuple(r) for r in o["regs"])
            for o in report["outcomes"]["strict"]
        }
        assert ((PARTIAL_X, 0), (PARTIAL_Y, 0)) in regs


class TestDomainsAndSummary:
    def test_cross_domain_agreement(self):
        """bitset and graph domains yield identical outcome sets over a
        representative slice of the corpus."""
        by_name = corpus_by_name()
        slice_names = (
            "mp-clflushopt",
            "chain-clflushopt-sfence",
            "cross-thread-flush",
            "sb-partial-forward",
        )
        models = ("strict", "epoch", "px86", "dpox86")
        for name in slice_names:
            report = run_program(
                by_name[name], models, domains=("bitset", "graph")
            )
            assert report["domain_mismatches"] == []

    def test_run_corpus_summary(self):
        programs = [
            corpus_by_name()[name]
            for name in ("mp-clflushopt", "mp-barrier", "sb-plain")
        ]
        report = run_corpus(programs, ("epoch", "px86", "dpox86"))
        summary = report["summary"]
        assert summary["programs"] == 3
        assert summary["schedules"] > 0
        assert summary["programs_with_disagreements"] >= 2
        assert summary["domain_mismatches"] == 0
        assert len(report["programs"]) == 3


class TestCutLimitDegradesGracefully:
    """One oversized persist DAG must not abort a corpus run: the
    runner records the truncation per program instead of letting
    ``RecoveryError`` propagate out of ``run_program``."""

    def test_run_program_records_cut_limit_exceeded(self):
        program = corpus_by_name()["mp-clflushopt"]
        report = run_program(program, ("px86", "strict"), cut_limit=1)
        assert set(report["cut_limit_exceeded"]) == {"px86", "strict"}
        # Truncated models carry partial (lower-bound) outcome sets and
        # are excluded from the lockstep domain check.
        assert report["domain_mismatches"] == []

    def test_run_corpus_survives_and_counts_truncations(self):
        by_name = corpus_by_name()
        programs = [by_name["mp-clflushopt"], by_name["sb-plain"]]
        report = run_corpus(programs, ("px86",), cut_limit=1)
        summary = report["summary"]
        assert summary["programs"] == 2
        assert summary["cut_limit_exceeded"] == 2

    def test_generous_limit_reports_no_truncation(self):
        program = corpus_by_name()["sb-plain"]
        report = run_program(program, ("px86",))
        assert report["cut_limit_exceeded"] == []


class TestBufferedBarrierRegression:
    """Satellite 3: fences and persist barriers issued while stores are
    buffered must keep their model semantics after draining."""

    def test_epoch_orders_across_buffered_barrier(self):
        program = corpus_by_name()["chain-epoch"]
        report = run_program(program, ("epoch",))
        # The persist order x < y < z forbids any state persisting a
        # later cell without every earlier one.
        for mem in (o["mem"] for o in report["outcomes"]["epoch"]):
            if mem["z"] == 1:
                assert mem["x"] == 1 and mem["y"] == 1
            if mem["y"] == 1:
                assert mem["x"] == 1

    def test_px86_orders_across_buffered_flush_chain(self):
        program = corpus_by_name()["chain-clflushopt-sfence"]
        report = run_program(program, ("px86",))
        for o in report["outcomes"]["px86"]:
            mem = o["mem"]
            # {x, y} < z: a persisted z implies both x and y.
            if mem["z"] == 1:
                assert mem["x"] == 1 and mem["y"] == 1
        # x and y themselves are unordered: both one-sided states exist.
        mems = [o["mem"] for o in report["outcomes"]["px86"]]
        assert any(m["x"] == 1 and m["y"] == 0 for m in mems)
        assert any(m["x"] == 0 and m["y"] == 1 for m in mems)
