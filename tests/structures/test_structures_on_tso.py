"""Recoverable structures on the TSO machine.

The structures' persistency disciplines are expressed in persist barriers
and strands, not consistency assumptions beyond what their locks provide;
they must therefore work unchanged on the store-buffering machine, and
their failure-injection guarantees must hold on the TSO memory order.
"""

import pytest

from repro.core import FailureInjector, analyze_graph
from repro.memory import NvramImage
from repro.sim import Machine, RandomScheduler
from repro.structures import MiniFs, PersistentKvStore, PersistentLog
from repro.structures.minifs import name_hash


def tso_machine(seed):
    return Machine(scheduler=RandomScheduler(seed=seed), consistency="tso")


def snapshot(machine, blank=False):
    return NvramImage.from_region(
        machine.memory.region("persistent"), blank=blank
    )


class TestKvOnTso:
    def test_put_get_and_injection(self):
        machine = tso_machine(seed=3)
        store = PersistentKvStore(machine, slots=64)
        base_image = snapshot(machine)
        inserted = {}

        def body(ctx, thread):
            for i in range(5):
                key, value = thread * 40 + i + 1, thread * 100 + i
                inserted[key] = value
                yield from store.put(ctx, key, value)

        for thread in range(2):
            machine.spawn(body, thread)
        trace = machine.run()
        assert store.recover(snapshot(machine)) == inserted
        graph = analyze_graph(trace, "epoch").graph
        injector = FailureInjector(graph, base_image)
        for _, image in injector.minimal_images(step=3):
            for key, value in store.recover(image).items():
                assert inserted[key] == value


class TestLogOnTso:
    def test_appends_and_injection(self):
        machine = tso_machine(seed=4)
        log = PersistentLog(machine, 8192)
        base_image = snapshot(machine)
        payloads = {}

        def body(ctx, thread):
            for i in range(4):
                payload = bytes([thread * 10 + i + 1]) * (16 + i)
                offset = yield from log.append(ctx, payload)
                payloads[offset] = payload

        for thread in range(2):
            machine.spawn(body, thread)
        trace = machine.run()
        records = log.recover(snapshot(machine))
        assert {r.offset: r.payload for r in records} == payloads
        graph = analyze_graph(trace, "strand").graph
        injector = FailureInjector(graph, base_image)
        for _, image in injector.extension_images(25, seed=2):
            for record in log.recover(image):
                assert payloads[record.offset] == record.payload


class TestMiniFsOnTso:
    def test_shadow_updates_and_injection(self):
        machine = tso_machine(seed=5)
        fs = MiniFs(machine)
        base_image = snapshot(machine)
        versions = {}

        def body(ctx, thread):
            name = f"f{thread}"
            history = versions.setdefault(name, [])
            for version in range(3):
                data = bytes(
                    ((thread * 17 + version * 5 + i) % 251) for i in range(200)
                )
                history.append(data)
                if version == 0:
                    yield from fs.create(ctx, name, data)
                else:
                    yield from fs.write(ctx, name, data)

        for thread in range(2):
            machine.spawn(body, thread)
        trace = machine.run()
        files = fs.recover(snapshot(machine))
        for name, history in versions.items():
            assert files[name_hash(name)].data == history[-1]
        graph = analyze_graph(trace, "epoch").graph
        injector = FailureInjector(graph, base_image)
        for _, image in injector.minimal_images(step=4):
            mounted = fs.recover(image)
            for name, history in versions.items():
                recovered = mounted.get(name_hash(name))
                if recovered is not None:
                    assert recovered.data in history
