"""Functional and failure-injection tests for the persistent log."""

import pytest

from repro.core import FailureInjector, analyze, analyze_graph
from repro.errors import ReproError
from repro.memory import NvramImage
from repro.sim import Machine, RandomScheduler
from repro.structures import LogFullError, PersistentLog
from repro.trace import validate


def fresh(capacity=8192, seed=0):
    machine = Machine(scheduler=RandomScheduler(seed=seed))
    log = PersistentLog(machine, capacity)
    base_image = NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )
    return machine, log, base_image


def snapshot(machine):
    return NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )


class TestAppend:
    def test_appends_recoverable_in_order(self):
        machine, log, _ = fresh()
        payloads = [bytes([i]) * (10 + i) for i in range(5)]

        def body(ctx):
            offsets = []
            for payload in payloads:
                offset = yield from log.append(ctx, payload)
                offsets.append(offset)
            return offsets

        thread = machine.spawn(body)
        trace = machine.run()
        validate(trace)
        records = log.recover(snapshot(machine))
        assert [r.payload for r in records] == payloads
        assert [r.offset for r in records] == thread.result

    def test_empty_payload_rejected(self):
        machine, log, _ = fresh()

        def body(ctx):
            yield from log.append(ctx, b"")

        machine.spawn(body)
        with pytest.raises(ReproError):
            machine.run()

    def test_log_full(self):
        machine, log, _ = fresh(capacity=128)

        def body(ctx):
            yield from log.append(ctx, b"x" * 50)  # 64 reserved
            yield from log.append(ctx, b"y" * 50)  # 128 reserved
            yield from log.append(ctx, b"z")       # no room

        machine.spawn(body)
        with pytest.raises(LogFullError):
            machine.run()

    def test_reset_truncates(self):
        machine, log, _ = fresh()

        def body(ctx):
            yield from log.append(ctx, b"before")
            yield from log.reset(ctx)
            yield from log.append(ctx, b"after")

        machine.spawn(body)
        machine.run()
        records = log.recover(snapshot(machine))
        assert [r.payload for r in records] == [b"after"]

    def test_concurrent_appends_all_recovered(self):
        machine, log, _ = fresh(seed=4)

        def body(ctx, thread):
            for i in range(6):
                yield from log.append(ctx, bytes([thread]) * (8 + i))

        for thread in range(4):
            machine.spawn(body, thread)
        machine.run()
        records = log.recover(snapshot(machine))
        assert len(records) == 24


class TestFailureInjection:
    @pytest.mark.parametrize("model", ["strict", "epoch", "strand"])
    def test_committed_records_never_torn(self, model):
        machine, log, base_image = fresh(seed=9)
        payloads = {}

        def body(ctx, thread):
            for i in range(5):
                payload = bytes([thread * 16 + i]) * (12 + i)
                offset = yield from log.append(ctx, payload)
                payloads[offset] = payload

        for thread in range(3):
            machine.spawn(body, thread)
        trace = machine.run()
        graph = analyze_graph(trace, model).graph
        injector = FailureInjector(graph, base_image)
        for _, image in injector.minimal_images():
            for entry in log.recover(image):
                assert payloads[entry.offset] == entry.payload
        for _, image in injector.extension_images(30, seed=1):
            for entry in log.recover(image):
                assert payloads[entry.offset] == entry.payload


class TestPersistConcurrency:
    def test_log_benefits_from_relaxed_persistency(self):
        """The log has the queue's structure, so the model ordering must
        hold: strict >> epoch > strand critical paths."""
        machine, log, _ = fresh(capacity=64 * 1024, seed=2)

        def body(ctx):
            for i in range(40):
                yield from log.append(ctx, bytes([i % 250 + 1]) * 48)

        machine.spawn(body)
        trace = machine.run()
        strict = analyze(trace, "strict").critical_path
        epoch = analyze(trace, "epoch").critical_path
        strand = analyze(trace, "strand").critical_path
        assert strict > 2 * epoch
        assert epoch > strand
