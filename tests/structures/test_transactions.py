"""Functional and failure-injection tests for durable transactions."""

import pytest

from repro.core import FailureInjector, analyze_graph
from repro.memory import NvramImage
from repro.sim import Machine, RandomScheduler, make_lock
from repro.structures import DurableTransactions, TransactionError


def fresh(threads=2, seed=0, **kwargs):
    machine = Machine(scheduler=RandomScheduler(seed=seed))
    manager = DurableTransactions(machine, threads=threads, **kwargs)
    base_image = NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )
    return machine, manager, base_image


def snapshot(machine):
    return NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )


class TestLifecycle:
    def test_commit_applies_in_place_and_replays(self):
        machine, manager, _ = fresh(threads=1)
        cell = machine.persistent_heap.malloc(8)

        def body(ctx):
            txn = yield from manager.begin(ctx)
            yield from manager.write(ctx, txn, cell, 42)
            observed = yield from manager.read(ctx, txn, cell)
            sequence = yield from manager.commit(ctx, txn)
            return observed, sequence

        thread = machine.spawn(body)
        machine.run()
        assert thread.result == (42, 0)
        assert machine.memory.read(cell, 8) == 42
        state = manager.recover(snapshot(machine))
        assert state.read(cell) == 42
        assert state.committed_txn_ids == [1]

    def test_read_through_sees_staged_then_memory(self):
        machine, manager, _ = fresh(threads=1)
        cell = machine.persistent_heap.malloc(8)
        machine.memory.write(cell, 8, 7)

        def body(ctx):
            txn = yield from manager.begin(ctx)
            before = yield from manager.read(ctx, txn, cell)
            yield from manager.write(ctx, txn, cell, 8)
            after = yield from manager.read(ctx, txn, cell)
            yield from manager.commit(ctx, txn)
            return before, after

        thread = machine.spawn(body)
        machine.run()
        assert thread.result == (7, 8)

    def test_abort_leaves_no_trace(self):
        machine, manager, _ = fresh(threads=1)
        cell = machine.persistent_heap.malloc(8)

        def body(ctx):
            txn = yield from manager.begin(ctx)
            yield from manager.write(ctx, txn, cell, 99)
            yield from manager.abort(ctx, txn)
            txn2 = yield from manager.begin(ctx)
            yield from manager.write(ctx, txn2, cell, 11)
            yield from manager.commit(ctx, txn2)

        machine.spawn(body)
        machine.run()
        assert machine.memory.read(cell, 8) == 11
        state = manager.recover(snapshot(machine))
        assert state.read(cell) == 11
        assert state.committed_txn_ids == [2]

    def test_double_begin_rejected(self):
        machine, manager, _ = fresh(threads=1)

        def body(ctx):
            yield from manager.begin(ctx)
            yield from manager.begin(ctx)

        machine.spawn(body)
        with pytest.raises(TransactionError):
            machine.run()

    def test_use_after_close_rejected(self):
        machine, manager, _ = fresh(threads=1)
        cell = machine.persistent_heap.malloc(8)

        def body(ctx):
            txn = yield from manager.begin(ctx)
            yield from manager.commit(ctx, txn)
            yield from manager.write(ctx, txn, cell, 1)

        machine.spawn(body)
        with pytest.raises(TransactionError):
            machine.run()

    def test_log_full(self):
        machine, manager, _ = fresh(threads=1, log_capacity=64)  # 2 records
        cell = machine.persistent_heap.malloc(64)

        def body(ctx):
            txn = yield from manager.begin(ctx)
            for i in range(3):
                yield from manager.write(ctx, txn, cell + 8 * i, i)

        machine.spawn(body)
        with pytest.raises(TransactionError):
            machine.run()

    def test_thread_without_log_rejected(self):
        machine, manager, _ = fresh(threads=1)

        def body(ctx):
            yield from manager.begin(ctx)

        machine.spawn(body)  # thread 0: fine
        machine.spawn(body)  # thread 1: no log
        with pytest.raises(TransactionError):
            machine.run()


class TestDurabilityUnderFailure:
    def run_transfers(self, seed, accounts=4, transfers_per_thread=5):
        """Classic bank transfers preserving a conserved total."""
        machine, manager, _ = fresh(threads=2, seed=seed)
        lock = make_lock(machine, "mcs")
        table = machine.persistent_heap.malloc(64 * accounts)
        cells = [table + 64 * i for i in range(accounts)]
        for cell in cells:
            machine.memory.write(cell, 8, 100)
        # Snapshot *after* the accounts' initial balances are durable.
        base_image = snapshot(machine)

        def body(ctx, thread):
            for i in range(transfers_per_thread):
                src = cells[(thread + i) % accounts]
                dst = cells[(thread + i + 1) % accounts]
                yield from lock.acquire(ctx)
                txn = yield from manager.begin(ctx)
                src_balance = yield from manager.read(ctx, txn, src)
                dst_balance = yield from manager.read(ctx, txn, dst)
                amount = 10 + i
                yield from manager.write(ctx, txn, src, src_balance - amount)
                yield from manager.write(ctx, txn, dst, dst_balance + amount)
                yield from manager.commit(ctx, txn)
                yield from lock.release(ctx)

        for thread in range(2):
            machine.spawn(body, thread)
        trace = machine.run()
        return machine, manager, base_image, trace, cells, accounts * 100

    @pytest.mark.parametrize("model", ["strict", "epoch", "strand"])
    def test_conserved_total_at_every_cut(self, model):
        machine, manager, base_image, trace, cells, total = (
            self.run_transfers(seed=1)
        )
        graph = analyze_graph(trace, model).graph
        injector = FailureInjector(graph, base_image)
        checked = 0
        for _, image in injector.minimal_images(step=2):
            state = manager.recover(image)
            assert sum(state.read(cell) for cell in cells) == total
            checked += 1
        for _, image in injector.extension_images(40, seed=3):
            state = manager.recover(image)
            assert sum(state.read(cell) for cell in cells) == total
            checked += 1
        assert checked > 50

    def test_committed_prefix_is_durable(self):
        """Commit k durable implies commits 0..k-1 durable (no holes)."""
        machine, manager, base_image, trace, cells, _ = self.run_transfers(
            seed=2
        )
        graph = analyze_graph(trace, "epoch").graph
        injector = FailureInjector(graph, base_image)
        for _, image in injector.extension_images(60, seed=5):
            state = manager.recover(image)
            count = len(state.committed_txn_ids)
            # Recovery walks the commit log in order; re-walking must find
            # exactly the same count (no published slot after a gap).
            again = manager.recover(image)
            assert len(again.committed_txn_ids) == count

    def test_transactions_race_by_design_like_2lc(self):
        """The redo-log fast path shares epochs with lock traffic, so the
        lint flags persist-epoch races — by design, like 2LC: correctness
        comes from the disciplined commit-log chain, which the
        conserved-total injection test proves, not from race freedom."""
        from repro.core import find_persist_epoch_races

        _, _, _, trace, _, _ = self.run_transfers(seed=6)
        races = find_persist_epoch_races(trace)
        assert races and all(race.kind == "sync" for race in races)

    def test_final_state_matches_in_place_data(self):
        machine, manager, base_image, trace, cells, total = (
            self.run_transfers(seed=4)
        )
        state = manager.recover(snapshot(machine))
        for cell in cells:
            assert state.read(cell) == machine.memory.read(cell, 8)
        assert len(state.committed_txn_ids) == 10
