"""Functional and failure-injection tests for the persistent KV store."""

import pytest

from repro.core import FailureInjector, analyze_graph
from repro.errors import ReproError
from repro.memory import NvramImage
from repro.sim import Machine, RandomScheduler
from repro.structures import PersistentKvStore, StoreFullError
from repro.trace import validate


def fresh(slots=64, seed=0):
    machine = Machine(scheduler=RandomScheduler(seed=seed))
    store = PersistentKvStore(machine, slots=slots)
    base_image = NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )
    return machine, store, base_image


class TestOperations:
    def test_put_get_roundtrip(self):
        machine, store, _ = fresh()

        def body(ctx):
            yield from store.put(ctx, 5, 500)
            yield from store.put(ctx, 6, 600)
            a = yield from store.get(ctx, 5)
            b = yield from store.get(ctx, 6)
            missing = yield from store.get(ctx, 7)
            return a, b, missing

        thread = machine.spawn(body)
        validate(machine.run())
        assert thread.result == (500, 600, None)

    def test_update_in_place(self):
        machine, store, _ = fresh()

        def body(ctx):
            yield from store.put(ctx, 5, 1)
            yield from store.put(ctx, 5, 2)
            value = yield from store.get(ctx, 5)
            return value

        thread = machine.spawn(body)
        machine.run()
        assert thread.result == 2

    def test_delete_and_reinsert(self):
        machine, store, _ = fresh()

        def body(ctx):
            yield from store.put(ctx, 5, 1)
            removed = yield from store.delete(ctx, 5)
            gone = yield from store.get(ctx, 5)
            yield from store.put(ctx, 5, 9)
            value = yield from store.get(ctx, 5)
            missing = yield from store.delete(ctx, 42)
            return removed, gone, value, missing

        thread = machine.spawn(body)
        machine.run()
        assert thread.result == (True, None, 9, False)

    def test_collisions_probe_linearly(self):
        machine, store, _ = fresh(slots=8)
        keys = [1, 9, 17]  # all hash to slot 1

        def body(ctx):
            for key in keys:
                yield from store.put(ctx, key, key * 10)
            values = []
            for key in keys:
                value = yield from store.get(ctx, key)
                values.append(value)
            return values

        thread = machine.spawn(body)
        machine.run()
        assert thread.result == [10, 90, 170]

    def test_full_store_raises(self):
        machine, store, _ = fresh(slots=2)

        def body(ctx):
            for key in (1, 2, 3):
                yield from store.put(ctx, key, key)

        machine.spawn(body)
        with pytest.raises(StoreFullError):
            machine.run()

    def test_zero_key_rejected(self):
        machine, store, _ = fresh()

        def body(ctx):
            yield from store.put(ctx, 0, 1)

        machine.spawn(body)
        with pytest.raises(ReproError):
            machine.run()

    def test_concurrent_puts_disjoint_keys(self):
        machine, store, _ = fresh(slots=128, seed=3)

        def body(ctx, thread):
            for i in range(8):
                yield from store.put(ctx, thread * 100 + i + 1, thread)

        for thread in range(4):
            machine.spawn(body, thread)
        machine.run()
        image = NvramImage.from_region(
            machine.memory.region("persistent"), blank=False
        )
        assert len(store.recover(image)) == 32


class TestFailureInjection:
    @pytest.mark.parametrize("model", ["strict", "epoch", "strand"])
    def test_no_torn_publications(self, model):
        machine, store, base_image = fresh(slots=128, seed=5)
        inserted = {}

        def body(ctx, thread):
            for i in range(6):
                key, value = thread * 50 + i + 1, thread * 1000 + i
                inserted[key] = value
                yield from store.put(ctx, key, value)

        for thread in range(3):
            machine.spawn(body, thread)
        trace = machine.run()
        graph = analyze_graph(trace, model).graph
        injector = FailureInjector(graph, base_image)
        for _, image in injector.minimal_images():
            for key, value in store.recover(image).items():
                assert inserted[key] == value
        for _, image in injector.extension_images(40, seed=4):
            for key, value in store.recover(image).items():
                assert inserted[key] == value

    def test_updates_recover_old_or_new(self):
        machine, store, base_image = fresh(seed=6)

        def body(ctx):
            yield from store.put(ctx, 5, 111)
            yield from store.put(ctx, 5, 222)

        machine.spawn(body)
        trace = machine.run()
        graph = analyze_graph(trace, "epoch").graph
        injector = FailureInjector(graph, base_image)
        observed = set()
        for _, image in injector.prefix_images():
            pairs = store.recover(image)
            observed.add(pairs.get(5))
        # A failure sees the key absent, the old value, or the new value
        # — never anything else (eight-byte persist atomicity).
        assert observed <= {None, 111, 222}
        assert {111, 222} <= observed
