"""Tests for persistent counters: the strong-persist-atomicity microcosm."""

import pytest

from repro.core import AnalysisConfig, FailureInjector, analyze, analyze_graph
from repro.memory import NvramImage
from repro.sim import Machine, RandomScheduler
from repro.structures import PersistentCounter, StripedPersistentCounter

NO_COALESCE = AnalysisConfig(coalescing=False)


def run_counters(threads=4, increments=10, seed=0):
    machine = Machine(scheduler=RandomScheduler(seed=seed))
    shared = PersistentCounter(machine)
    striped = StripedPersistentCounter(machine, threads)
    base_image = NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )

    def body(ctx, thread):
        for _ in range(increments):
            yield from shared.increment(ctx)
            yield from striped.increment(ctx)
        total = yield from striped.read(ctx)
        return total

    spawned = [machine.spawn(body, t) for t in range(threads)]
    trace = machine.run()
    return machine, shared, striped, base_image, trace, spawned


class TestSemantics:
    def test_both_counters_reach_total(self):
        machine, shared, striped, _, trace, threads = run_counters()
        image = NvramImage.from_region(
            machine.memory.region("persistent"), blank=False
        )
        assert shared.recover(image) == 40
        assert striped.recover(image) == 40
        assert max(t.result for t in threads) == 40

    def test_increment_returns_previous(self):
        machine = Machine()
        counter = PersistentCounter(machine)

        def body(ctx):
            first = yield from counter.increment(ctx, 5)
            second = yield from counter.increment(ctx, 2)
            value = yield from counter.read(ctx)
            return first, second, value

        thread = machine.spawn(body)
        machine.run()
        assert thread.result == (0, 5, 7)

    def test_striped_requires_positive_threads(self):
        with pytest.raises(ValueError):
            StripedPersistentCounter(Machine(), 0)


class TestPersistConcurrency:
    def test_shared_counter_serialises_striped_does_not(self):
        """Strong persist atomicity: same-address persists form a chain;
        striped persists are concurrent under relaxed models."""
        machine, shared, striped, _, trace, _ = run_counters(
            threads=4, increments=10, seed=1
        )
        result = analyze(trace, "strand", NO_COALESCE)
        # 40 shared-counter persists form one chain; the interleaved
        # striped persists add at most a few links.
        assert result.critical_path >= 40

        # Isolate the two structures by filtering the graph's addresses.
        graph = analyze_graph(trace, "strand").graph
        shared_chain = [n for n in graph.nodes if n.addr == shared.addr]
        levels = graph.levels()
        shared_levels = sorted(levels[n.pid] for n in shared_chain)
        assert shared_levels == list(
            range(shared_levels[0], shared_levels[0] + len(shared_chain))
        )

    def test_recovered_counts_are_plausible_at_any_cut(self):
        machine, shared, striped, base_image, trace, _ = run_counters(seed=2)
        graph = analyze_graph(trace, "epoch").graph
        injector = FailureInjector(graph, base_image)
        for _, image in injector.extension_images(60, seed=3):
            shared_value = shared.recover(image)
            striped_value = striped.recover(image)
            assert 0 <= shared_value <= 40
            assert 0 <= striped_value <= 40

    def test_shared_counter_is_monotone_over_prefixes(self):
        machine, shared, _, base_image, trace, _ = run_counters(seed=4)
        graph = analyze_graph(trace, "strict").graph
        injector = FailureInjector(graph, base_image)
        previous = -1
        for _, image in injector.prefix_images(step=7):
            value = shared.recover(image)
            assert value >= previous
            previous = value
