"""Functional and failure-injection tests for MiniFS."""

import pytest

from repro.core import FailureInjector, analyze_graph
from repro.errors import RecoveryError, ReproError
from repro.memory import NvramImage
from repro.sim import Machine, RandomScheduler
from repro.structures import MiniFs
from repro.structures.minifs import MAX_FILE_SIZE, name_hash
from repro.trace import validate


def fresh(seed=0, **kwargs):
    machine = Machine(scheduler=RandomScheduler(seed=seed))
    fs = MiniFs(machine, **kwargs)
    base_image = NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )
    return machine, fs, base_image


def snapshot(machine):
    return NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )


def content(thread, version, size=300):
    return bytes(((thread * 31 + version * 7 + i) % 251) for i in range(size))


class TestOperations:
    def test_create_read_roundtrip(self):
        machine, fs, _ = fresh()
        data = content(0, 0)

        def body(ctx):
            yield from fs.create(ctx, "alpha", data)
            read_back = yield from fs.read(ctx, "alpha")
            missing = yield from fs.read(ctx, "beta")
            return read_back, missing

        thread = machine.spawn(body)
        validate(machine.run())
        assert thread.result == (data, None)

    def test_create_existing_rejected(self):
        machine, fs, _ = fresh()

        def body(ctx):
            yield from fs.create(ctx, "alpha", b"x" * 16)
            yield from fs.create(ctx, "alpha", b"y" * 16)

        machine.spawn(body)
        with pytest.raises(ReproError):
            machine.run()

    def test_shadow_write_replaces_content(self):
        machine, fs, _ = fresh()
        old, new = content(0, 0), content(0, 1, size=900)

        def body(ctx):
            yield from fs.create(ctx, "alpha", old)
            yield from fs.write(ctx, "alpha", new)
            data = yield from fs.read(ctx, "alpha")
            return data

        thread = machine.spawn(body)
        machine.run()
        assert thread.result == new

    def test_unlink(self):
        machine, fs, _ = fresh()

        def body(ctx):
            yield from fs.create(ctx, "alpha", b"z" * 32)
            removed = yield from fs.unlink(ctx, "alpha")
            gone = yield from fs.read(ctx, "alpha")
            again = yield from fs.unlink(ctx, "alpha")
            return removed, gone, again

        thread = machine.spawn(body)
        machine.run()
        assert thread.result == (True, None, False)

    def test_space_reclaimed_through_rewrites(self):
        """Many rewrites of one file must not exhaust 64 blocks."""
        machine, fs, _ = fresh()

        def body(ctx):
            yield from fs.create(ctx, "alpha", content(0, 0, size=1000))
            for version in range(30):
                yield from fs.write(ctx, "alpha", content(0, version, 1000))

        machine.spawn(body)
        machine.run()
        files = fs.recover(snapshot(machine))
        assert files[name_hash("alpha")].data == content(0, 29, 1000)

    def test_oversized_file_rejected(self):
        machine, fs, _ = fresh()

        def body(ctx):
            yield from fs.create(ctx, "big", b"x" * (MAX_FILE_SIZE + 1))

        machine.spawn(body)
        with pytest.raises(ReproError):
            machine.run()

    def test_empty_file(self):
        machine, fs, _ = fresh()

        def body(ctx):
            yield from fs.create(ctx, "empty", b"")
            data = yield from fs.read(ctx, "empty")
            return data

        thread = machine.spawn(body)
        machine.run()
        assert thread.result == b""
        files = fs.recover(snapshot(machine))
        assert files[name_hash("empty")].data == b""

    def test_multithreaded_distinct_files(self):
        machine, fs, _ = fresh(seed=5)

        def body(ctx, thread):
            name = f"file-{thread}"
            yield from fs.create(ctx, name, content(thread, 0))
            yield from fs.write(ctx, name, content(thread, 1))

        for thread in range(3):
            machine.spawn(body, thread)
        machine.run()
        files = fs.recover(snapshot(machine))
        assert len(files) == 3
        for thread in range(3):
            assert files[name_hash(f"file-{thread}")].data == content(thread, 1)


class TestRecoveryUnderFailure:
    def _run_rewrite_workload(self, race_free, seed):
        machine, fs, base_image = fresh(seed=seed, race_free=race_free)
        versions = {}

        def body(ctx, thread):
            name = f"f{thread}"
            versions.setdefault(name, []).append(content(thread, 0))
            yield from fs.create(ctx, name, content(thread, 0))
            for version in range(1, 4):
                versions[name].append(content(thread, version))
                yield from fs.write(ctx, name, content(thread, version))

        for thread in range(2):
            machine.spawn(body, thread)
        trace = machine.run()
        return machine, fs, base_image, trace, versions

    def _count_violations(self, fs, base_image, trace, versions, model):
        graph = analyze_graph(trace, model).graph
        injector = FailureInjector(graph, base_image)
        violations = 0
        for _, image in injector.minimal_images(step=2):
            try:
                files = fs.recover(image)
            except RecoveryError:
                violations += 1
                continue
            for name, history in versions.items():
                recovered = files.get(name_hash(name))
                if recovered is not None and recovered.data not in history:
                    violations += 1
        return violations

    @pytest.mark.parametrize("model", ["strict", "epoch", "strand"])
    def test_race_free_fs_never_tears(self, model):
        machine, fs, base_image, trace, versions = self._run_rewrite_workload(
            race_free=True, seed=3
        )
        assert (
            self._count_violations(fs, base_image, trace, versions, model)
            == 0
        )

    def test_premature_reuse_found_without_discipline(self):
        """Without barriers around the lock, block reuse can persist
        before the directory swing: some cut recovers a torn file."""
        total = 0
        for seed in range(3):
            machine, fs, base_image, trace, versions = (
                self._run_rewrite_workload(race_free=False, seed=seed)
            )
            total += self._count_violations(
                fs, base_image, trace, versions, "epoch"
            )
        assert total > 0

    def test_race_lint_matches_discipline_flag(self):
        """The persist-epoch race lint sees exactly what the flag does:
        disciplined MiniFS is race-free, undisciplined MiniFS races."""
        from repro.core import is_race_free

        _, _, _, disciplined, _ = self._run_rewrite_workload(
            race_free=True, seed=6
        )
        _, _, _, undisciplined, _ = self._run_rewrite_workload(
            race_free=False, seed=6
        )
        assert is_race_free(disciplined)
        assert not is_race_free(undisciplined)

    def test_unlink_is_atomic_at_recovery(self):
        machine, fs, base_image = fresh(seed=8)
        data = content(0, 0)

        def body(ctx):
            yield from fs.create(ctx, "alpha", data)
            yield from fs.unlink(ctx, "alpha")

        machine.spawn(body)
        trace = machine.run()
        graph = analyze_graph(trace, "epoch").graph
        injector = FailureInjector(graph, base_image)
        observed = set()
        for _, image in injector.prefix_images():
            files = fs.recover(image)
            recovered = files.get(name_hash("alpha"))
            observed.add(recovered.data if recovered else None)
        assert observed == {None, data}
