"""Detect-and-degrade recovery under hand-planted device corruption.

Each hardened structure's ``recover_report`` must turn corrupt
persistent bytes into quarantine diagnoses — never raise, never return
silently-wrong state.  These tests corrupt images surgically (a flipped
bit in a known field) rather than through :mod:`repro.inject`, pinning
the per-field detection story the fault campaigns rely on.
"""

import pytest

from repro.inject import RecoveryReport
from repro.memory import NvramImage
from repro.queue import allocate_queue, run_insert_workload
from repro.queue.layout import HEAD_OFFSET, TAIL_OFFSET
from repro.queue.recovery import recover_report as queue_recover_report
from repro.sim import Machine, RandomScheduler
from repro.structures import MiniFs, PersistentKvStore, PersistentLog
from repro.structures.kv import (
    CHECKSUM_OFFSET,
    KEY_OFFSET,
    VALID_OFFSET,
    VALUE_OFFSET,
)
from repro.structures.log import COMMITTED_OFFSET, DATA_OFFSET, LENGTH_FIELD
from repro.structures.minifs import (
    ENTRY_NAME,
    ENTRY_REF,
    INODE_BLOCKS,
    name_hash,
)


def machine_with(builder, seed=0):
    machine = Machine(scheduler=RandomScheduler(seed=seed))
    structure = builder(machine)
    return machine, structure


def snapshot(machine):
    return NvramImage.from_region(
        machine.memory.region("persistent"), blank=False
    )


class TestLogReport:
    def build(self, payloads):
        machine, log = machine_with(lambda m: PersistentLog(m, 8192))

        def body(ctx):
            for payload in payloads:
                yield from log.append(ctx, payload)

        machine.spawn(body)
        machine.run()
        return log, snapshot(machine)

    def test_clean_image_reports_everything_no_quarantine(self):
        payloads = [b"alpha", b"beta", b"gamma"]
        log, image = self.build(payloads)
        report = log.recover_report(image)
        assert isinstance(report, RecoveryReport)
        assert [r.payload for r in report.state] == payloads
        assert report.quarantined == ()

    def test_corrupted_payload_quarantines_that_record_only(self):
        payloads = [b"alpha", b"beta", b"gamma"]
        log, image = self.build(payloads)
        # Records are 64-byte aligned: record 1 sits at offset 64.
        image.flip_bits(log.base + DATA_OFFSET + 64 + LENGTH_FIELD, 0x01)
        report = log.recover_report(image)
        assert [r.payload for r in report.state] == [b"alpha", b"gamma"]
        assert [d.kind for d in report.quarantined] == ["checksum"]
        assert "offset 64" in report.quarantined[0].location

    def test_bad_frame_quarantines_the_rest(self):
        log, image = self.build([b"alpha", b"beta", b"gamma"])
        # Zero record 1's frame word: no trustworthy length to skip by.
        image.apply_raw(
            log.base + DATA_OFFSET + 64, (0).to_bytes(8, "little")
        )
        report = log.recover_report(image)
        assert [r.payload for r in report.state] == [b"alpha"]
        assert [d.kind for d in report.quarantined] == ["frame"]

    def test_implausible_committed_size_is_clamped_not_fatal(self):
        log, image = self.build([b"alpha"])
        image.apply_raw(
            log.base + COMMITTED_OFFSET, (1 << 32).to_bytes(8, "little")
        )
        report = log.recover_report(image)
        kinds = [d.kind for d in report.quarantined]
        assert kinds[0] == "committed-size"
        # recover() on the same image raises instead.
        from repro.errors import RecoveryError

        with pytest.raises(RecoveryError):
            log.recover(image)


class TestKvReport:
    def build(self, pairs):
        machine, kv = machine_with(lambda m: PersistentKvStore(m, slots=32))

        def body(ctx):
            for key, value in pairs:
                yield from kv.put(ctx, key, value)

        machine.spawn(body)
        machine.run()
        return kv, snapshot(machine)

    def live_slot_addr(self, kv, image, key):
        for index in range(kv.slots):
            addr = kv._slot_addr(index)
            if (
                image.read(addr + VALID_OFFSET, 8) == 1
                and image.read(addr + KEY_OFFSET, 8) == key
            ):
                return addr
        raise AssertionError(f"key {key} not found live")

    def test_clean_image_reports_all_pairs(self):
        kv, image = self.build([(3, 30), (4, 40)])
        report = kv.recover_report(image)
        assert report.state == {3: 30, 4: 40}
        assert report.quarantined == ()

    def test_value_flip_quarantines_the_slot(self):
        kv, image = self.build([(3, 30), (4, 40)])
        addr = self.live_slot_addr(kv, image, 3)
        image.flip_bits(addr + VALUE_OFFSET, 0x4)
        report = kv.recover_report(image)
        assert report.state == {4: 40}
        assert [d.kind for d in report.quarantined] == ["checksum"]
        # The trusting recover() returns the wrong value silently —
        # exactly the exposure recover_report exists to close.
        assert kv.recover(image)[3] != 30

    def test_checksum_flip_quarantines_without_losing_others(self):
        kv, image = self.build([(3, 30), (4, 40)])
        addr = self.live_slot_addr(kv, image, 4)
        image.flip_bits(addr + CHECKSUM_OFFSET, 0x1)
        report = kv.recover_report(image)
        assert report.state == {3: 30}
        assert [d.kind for d in report.quarantined] == ["checksum"]

    def test_unknown_valid_flag_quarantined(self):
        kv, image = self.build([(3, 30)])
        addr = self.live_slot_addr(kv, image, 3)
        image.apply_raw(addr + VALID_OFFSET, (7).to_bytes(8, "little"))
        report = kv.recover_report(image)
        assert report.state == {}
        assert [d.kind for d in report.quarantined] == ["valid-flag"]

    def test_reserved_key_quarantined(self):
        kv, image = self.build([(3, 30)])
        addr = self.live_slot_addr(kv, image, 3)
        image.apply_raw(addr + KEY_OFFSET, (0).to_bytes(8, "little"))
        report = kv.recover_report(image)
        assert report.state == {}
        assert [d.kind for d in report.quarantined] == ["reserved-key"]


class TestMiniFsReport:
    def build(self, files):
        machine, fs = machine_with(lambda m: MiniFs(m))

        def body(ctx):
            for name, data in files:
                yield from fs.create(ctx, name, data)

        machine.spawn(body)
        machine.run()
        return fs, snapshot(machine)

    def slot_of(self, fs, image, name):
        hashed = name_hash(name)
        for slot in range(fs._dir_slots):
            addr = fs._entry_addr(slot)
            if (
                image.read(addr + ENTRY_REF, 8) != 0
                and image.read(addr + ENTRY_NAME, 8) == hashed
            ):
                return slot, addr
        raise AssertionError(f"{name} not found in directory")

    def test_clean_mount_reports_all_files(self):
        files = [("alpha", b"a" * 100), ("beta", b"b" * 200)]
        fs, image = self.build(files)
        report = fs.recover_report(image)
        assert {
            h: f.data for h, f in report.state.items()
        } == {name_hash(n): d for n, d in files}
        assert report.quarantined == ()

    def test_data_flip_quarantines_the_file(self):
        fs, image = self.build([("alpha", b"a" * 100), ("beta", b"b" * 64)])
        _, entry_addr = self.slot_of(fs, image, "alpha")
        ref = image.read(entry_addr + ENTRY_REF, 8)
        inode_addr = fs._inode_addr(ref - 1)
        pointer = image.read(inode_addr + INODE_BLOCKS, 8)
        image.flip_bits(fs._block_addr(pointer - 1), 0x10)
        report = fs.recover_report(image)
        assert set(report.state) == {name_hash("beta")}
        assert [d.kind for d in report.quarantined] == ["entry"]
        assert "checksum" in report.quarantined[0].detail

    def test_name_flip_is_detected_not_misbound(self):
        """A bit flip in a directory entry's name word must not mount
        the file under a different name — the name-binding checksum
        catches it."""
        fs, image = self.build([("alpha", b"a" * 100)])
        _, entry_addr = self.slot_of(fs, image, "alpha")
        image.flip_bits(entry_addr + ENTRY_NAME, 0x2)
        report = fs.recover_report(image)
        assert report.state == {}
        assert [d.kind for d in report.quarantined] == ["entry"]
        assert "mis-bound name" in report.quarantined[0].detail

    def test_ref_swap_to_other_valid_inode_detected(self):
        """Pointing one entry's ref at another file's (valid) inode is
        caught: the inode checksum binds the *original* name."""
        fs, image = self.build([("alpha", b"a" * 100), ("beta", b"b" * 64)])
        _, alpha_addr = self.slot_of(fs, image, "alpha")
        _, beta_addr = self.slot_of(fs, image, "beta")
        beta_ref = image.read(beta_addr + ENTRY_REF, 8)
        image.apply_raw(
            alpha_addr + ENTRY_REF, beta_ref.to_bytes(8, "little")
        )
        report = fs.recover_report(image)
        assert set(report.state) == {name_hash("beta")}
        kinds = sorted(d.kind for d in report.quarantined)
        assert kinds in (["entry"], ["duplicate", "entry"])

    def test_cleared_ref_means_file_absent_not_quarantined(self):
        """ref=0 is the unpublished encoding: the file legally never
        happened (dropped-persist semantics), so nothing is flagged."""
        fs, image = self.build([("alpha", b"a" * 100), ("beta", b"b" * 64)])
        _, alpha_addr = self.slot_of(fs, image, "alpha")
        image.apply_raw(alpha_addr + ENTRY_REF, (0).to_bytes(8, "little"))
        report = fs.recover_report(image)
        assert set(report.state) == {name_hash("beta")}
        assert report.quarantined == ()


class TestQueueReport:
    @pytest.fixture(scope="class")
    def finished(self):
        return run_insert_workload(
            design="cwl", threads=1, inserts_per_thread=4, seed=11
        )

    def image_of(self, finished):
        return NvramImage.from_region(
            finished.machine.memory.region("persistent"), blank=False
        )

    def test_clean_image_reports_entries(self, finished):
        report = queue_recover_report(
            self.image_of(finished), finished.queue.base
        )
        assert len(report.state) == 4
        assert report.quarantined == ()

    def test_corrupt_geometry_quarantines_whole_queue(self, finished):
        image = self.image_of(finished)
        image.flip_bits(finished.queue.base, 0x1)  # magic word
        report = queue_recover_report(image, finished.queue.base)
        assert report.state == []
        assert [d.kind for d in report.quarantined] == ["geometry"]

    def test_inconsistent_head_tail_quarantined(self, finished):
        image = self.image_of(finished)
        base = finished.queue.base
        head = image.read(base + HEAD_OFFSET, 8)
        image.apply_raw(
            base + TAIL_OFFSET, (head + 8).to_bytes(8, "little")
        )
        report = queue_recover_report(image, base)
        assert report.state == []
        assert [d.kind for d in report.quarantined] == ["head-tail"]

    def test_payload_corruption_is_the_documented_blind_spot(self, finished):
        """No per-entry checksum in the paper's wire format: a payload
        bit flip recovers structurally fine with wrong bytes.  This is
        the unhardened baseline the fault campaign measures."""
        image = self.image_of(finished)
        clean = queue_recover_report(image, finished.queue.base)
        first = clean.state[0]
        # Flip one payload bit of the first recovered entry.
        from repro.queue.layout import DATA_OFFSET as QUEUE_DATA_OFFSET
        from repro.queue.layout import LENGTH_FIELD_SIZE

        image.flip_bits(
            finished.queue.base
            + QUEUE_DATA_OFFSET
            + first.offset % finished.queue.capacity
            + LENGTH_FIELD_SIZE,
            0x1,
        )
        report = queue_recover_report(image, finished.queue.base)
        assert report.quarantined == ()
        assert report.state[0].payload != first.payload
