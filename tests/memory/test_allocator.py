"""Unit and property tests for the free-list allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidFreeError, OutOfMemoryError
from repro.memory import FreeListAllocator


@pytest.fixture
def allocator():
    return FreeListAllocator(0x1000, 64 * 1024)


class TestMalloc:
    def test_returns_aligned_addresses(self, allocator):
        for _ in range(10):
            addr = allocator.malloc(100)
            assert addr % allocator.alignment == 0

    def test_allocations_disjoint(self, allocator):
        blocks = [(allocator.malloc(100), 128) for _ in range(20)]
        for i, (a1, s1) in enumerate(blocks):
            for a2, _ in blocks[i + 1 :]:
                assert a2 >= a1 + s1 or a1 >= a2 + s1

    def test_rounds_size_to_alignment(self, allocator):
        addr = allocator.malloc(1)
        assert allocator.live_allocations[addr] == allocator.alignment

    def test_rejects_zero_size(self, allocator):
        with pytest.raises(ValueError):
            allocator.malloc(0)

    def test_out_of_memory(self):
        small = FreeListAllocator(0x1000, 256)
        small.malloc(128)
        with pytest.raises(OutOfMemoryError):
            small.malloc(256)

    def test_exhausts_then_recovers(self):
        small = FreeListAllocator(0x1000, 256)
        addr = small.malloc(256)
        with pytest.raises(OutOfMemoryError):
            small.malloc(64)
        small.free(addr)
        assert small.malloc(256) == addr


class TestFree:
    def test_free_returns_space(self, allocator):
        before = allocator.bytes_free
        addr = allocator.malloc(1000)
        allocator.free(addr)
        assert allocator.bytes_free == before

    def test_double_free_rejected(self, allocator):
        addr = allocator.malloc(64)
        allocator.free(addr)
        with pytest.raises(InvalidFreeError):
            allocator.free(addr)

    def test_free_of_interior_pointer_rejected(self, allocator):
        addr = allocator.malloc(256)
        with pytest.raises(InvalidFreeError):
            allocator.free(addr + 64)

    def test_coalescing_allows_large_realloc(self):
        arena = FreeListAllocator(0x1000, 1024)
        blocks = [arena.malloc(64) for _ in range(16)]
        with pytest.raises(OutOfMemoryError):
            arena.malloc(64)
        for addr in blocks:
            arena.free(addr)
        # After freeing everything the arena must serve one maximal block.
        assert arena.malloc(1024) == 0x1000

    def test_allocation_containing(self, allocator):
        addr = allocator.malloc(200)
        assert allocator.allocation_containing(addr + 100) == (addr, 256)
        with pytest.raises(InvalidFreeError):
            allocator.allocation_containing(addr + 1024)


class TestConstruction:
    def test_unaligned_base_is_aligned_up(self):
        arena = FreeListAllocator(0x1008, 4096)
        addr = arena.malloc(64)
        assert addr % 64 == 0
        assert addr >= 0x1008

    def test_bad_alignment_rejected(self):
        with pytest.raises(ValueError):
            FreeListAllocator(0x1000, 4096, alignment=48)

    def test_tiny_arena_rejected(self):
        with pytest.raises(ValueError):
            FreeListAllocator(0x1001, 16)

    def test_owns(self):
        arena = FreeListAllocator(0x1000, 4096)
        assert arena.owns(0x1000)
        assert not arena.owns(0x10000)


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.one_of(
            st.tuples(st.just("malloc"), st.integers(1, 2000)),
            st.tuples(st.just("free"), st.integers(0, 30)),
        ),
        max_size=120,
    )
)
def test_allocator_invariants_hold_under_random_ops(operations):
    """Random malloc/free sequences: blocks stay disjoint and accounted."""
    arena = FreeListAllocator(0x4000, 32 * 1024)
    total = arena.bytes_free
    live = []
    for op, value in operations:
        if op == "malloc":
            try:
                live.append(arena.malloc(value))
            except OutOfMemoryError:
                pass
        elif live:
            arena.free(live.pop(value % len(live)))
        # Invariant: free bytes + live bytes == arena size.
        live_bytes = sum(arena.live_allocations.values())
        assert arena.bytes_free + live_bytes == total
        # Invariant: live blocks are disjoint and aligned.
        spans = sorted(
            (addr, addr + size) for addr, size in arena.live_allocations.items()
        )
        for (a_lo, a_hi), (b_lo, _) in zip(spans, spans[1:]):
            assert a_hi <= b_lo
        for addr in arena.live_allocations:
            assert addr % arena.alignment == 0
    for addr in live:
        arena.free(addr)
    assert arena.bytes_free == total
