"""Unit tests for the simulated address space."""

import pytest

from repro.errors import MemoryAccessError
from repro.memory import AddressSpace, Region


@pytest.fixture
def space():
    return AddressSpace.with_default_layout(
        volatile_size=4096, persistent_size=4096
    )


class TestRegions:
    def test_default_layout_has_two_regions(self, space):
        names = [region.name for region in space.regions]
        assert names == ["volatile", "persistent"]

    def test_region_lookup_by_name(self, space):
        assert space.region("volatile").persistent is False
        assert space.region("persistent").persistent is True

    def test_unknown_region_name(self, space):
        with pytest.raises(MemoryAccessError):
            space.region("nvdimm")

    def test_is_persistent(self, space):
        volatile = space.region("volatile")
        persistent = space.region("persistent")
        assert not space.is_persistent(volatile.base)
        assert space.is_persistent(persistent.base)

    def test_rejects_overlapping_regions(self):
        with pytest.raises(MemoryAccessError):
            AddressSpace(
                [
                    Region("a", 0x1000, 0x100, False),
                    Region("b", 0x1080, 0x100, False),
                ]
            )

    def test_rejects_duplicate_names(self):
        with pytest.raises(MemoryAccessError):
            AddressSpace(
                [
                    Region("a", 0x1000, 0x100, False),
                    Region("a", 0x2000, 0x100, False),
                ]
            )

    def test_rejects_unaligned_base(self):
        with pytest.raises(MemoryAccessError):
            Region("odd", 0x1001, 0x100, False)

    def test_region_end_boundary(self, space):
        region = space.region("volatile")
        with pytest.raises(MemoryAccessError):
            space.read(region.end - 4, 8)


class TestReadWrite:
    def test_roundtrip_word(self, space):
        base = space.region("volatile").base
        space.write(base, 8, 0xDEADBEEFCAFE)
        assert space.read(base, 8) == 0xDEADBEEFCAFE

    def test_roundtrip_subword(self, space):
        base = space.region("volatile").base
        space.write(base + 4, 4, 0x1234)
        assert space.read(base + 4, 4) == 0x1234

    def test_little_endian_layout(self, space):
        base = space.region("volatile").base
        space.write(base, 8, 0x0102030405060708)
        assert space.read_bytes(base, 8) == bytes(
            [8, 7, 6, 5, 4, 3, 2, 1]
        )

    def test_memory_starts_zeroed(self, space):
        base = space.region("persistent").base
        assert space.read(base, 8) == 0

    def test_value_too_large(self, space):
        base = space.region("volatile").base
        with pytest.raises(MemoryAccessError):
            space.write(base, 4, 1 << 32)

    def test_negative_value(self, space):
        base = space.region("volatile").base
        with pytest.raises(MemoryAccessError):
            space.write(base, 8, -1)

    def test_unmapped_address(self, space):
        with pytest.raises(MemoryAccessError):
            space.read(0x10, 8)

    def test_word_crossing_rejected(self, space):
        base = space.region("volatile").base
        with pytest.raises(MemoryAccessError):
            space.read(base + 4, 8)


class TestBulkAccess:
    def test_bytes_roundtrip(self, space):
        base = space.region("persistent").base
        payload = bytes(range(100))
        space.write_bytes(base + 8, payload)
        assert space.read_bytes(base + 8, 100) == payload

    def test_empty_bulk_ops(self, space):
        base = space.region("volatile").base
        space.write_bytes(base, b"")
        assert space.read_bytes(base, 0) == b""

    def test_negative_size_rejected(self, space):
        base = space.region("volatile").base
        with pytest.raises(MemoryAccessError):
            space.read_bytes(base, -1)

    def test_bulk_ignores_word_alignment(self, space):
        base = space.region("volatile").base
        space.write_bytes(base + 3, b"xyz")
        assert space.read_bytes(base + 3, 3) == b"xyz"
