"""Unit tests for the NVRAM image (recovery observer snapshot)."""

import pytest

from repro.errors import MemoryAccessError
from repro.memory import AddressSpace, NvramImage


@pytest.fixture
def image():
    return NvramImage(base=0x8000_0000, size=4096)


class TestApplyPersist:
    def test_persist_visible(self, image):
        image.apply_persist(0x8000_0000, (123).to_bytes(8, "little"))
        assert image.read(0x8000_0000, 8) == 123

    def test_counts_applied(self, image):
        image.apply_persist(0x8000_0000, b"\x01" * 8)
        image.apply_persist(0x8000_0008, b"\x02" * 8)
        assert image.persists_applied == 2

    def test_subword_persist(self, image):
        image.apply_persist(0x8000_0004, b"\xff\xff")
        assert image.read(0x8000_0004, 2) == 0xFFFF
        assert image.read(0x8000_0000, 4) == 0

    def test_rejects_block_crossing(self, image):
        with pytest.raises(MemoryAccessError):
            image.apply_persist(0x8000_0004, b"\x00" * 8)

    def test_rejects_out_of_range(self, image):
        with pytest.raises(MemoryAccessError):
            image.apply_persist(0x8000_0000 + 4096, b"\x00" * 8)

    def test_rejects_empty(self, image):
        with pytest.raises(MemoryAccessError):
            image.apply_persist(0x8000_0000, b"")

    def test_larger_granularity_allows_wider_persists(self):
        image = NvramImage(0x8000_0000, 4096, persist_granularity=64)
        image.apply_persist(0x8000_0000, bytes(range(64)))
        assert image.read_bytes(0x8000_0000, 64) == bytes(range(64))

    def test_apply_all(self, image):
        image.apply_all(
            [(0x8000_0000, b"\x01" * 8), (0x8000_0008, b"\x02" * 8)]
        )
        assert image.persists_applied == 2


class TestSnapshots:
    def test_blank_from_region_is_zeroed(self):
        space = AddressSpace.with_default_layout(persistent_size=4096)
        region = space.region("persistent")
        space.write(region.base, 8, 42)
        image = NvramImage.from_region(region, blank=True)
        assert image.read(region.base, 8) == 0

    def test_snapshot_from_region_copies_contents(self):
        space = AddressSpace.with_default_layout(persistent_size=4096)
        region = space.region("persistent")
        space.write(region.base, 8, 42)
        image = NvramImage.from_region(region, blank=False)
        assert image.read(region.base, 8) == 42
        # Snapshot is decoupled from later region writes.
        space.write(region.base, 8, 99)
        assert image.read(region.base, 8) == 42

    def test_copy_is_independent(self, image):
        image.apply_persist(0x8000_0000, b"\x07" * 8)
        clone = image.copy()
        clone.apply_persist(0x8000_0000, b"\x09" * 8)
        assert image.read(0x8000_0000, 8) != clone.read(0x8000_0000, 8)
        assert clone.persists_applied == image.persists_applied + 1


class TestConstruction:
    def test_rejects_bad_granularity(self):
        with pytest.raises(MemoryAccessError):
            NvramImage(0, 64, persist_granularity=12)

    def test_rejects_size_mismatch(self):
        with pytest.raises(MemoryAccessError):
            NvramImage(0, 64, initial=b"\x00" * 32)

    def test_rejects_empty_image(self):
        with pytest.raises(MemoryAccessError):
            NvramImage(0, 0)
