"""Unit tests for address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryAccessError
from repro.memory import layout


class TestAlignment:
    def test_align_down(self):
        assert layout.align_down(0, 8) == 0
        assert layout.align_down(7, 8) == 0
        assert layout.align_down(8, 8) == 8
        assert layout.align_down(100, 64) == 64

    def test_align_up(self):
        assert layout.align_up(0, 8) == 0
        assert layout.align_up(1, 8) == 8
        assert layout.align_up(8, 8) == 8
        assert layout.align_up(65, 64) == 128

    def test_is_aligned(self):
        assert layout.is_aligned(64, 64)
        assert not layout.is_aligned(65, 64)

    def test_is_power_of_two(self):
        assert all(layout.is_power_of_two(1 << k) for k in range(12))
        assert not layout.is_power_of_two(0)
        assert not layout.is_power_of_two(-8)
        assert not layout.is_power_of_two(24)

    @given(st.integers(min_value=0, max_value=1 << 40),
           st.sampled_from([1, 2, 4, 8, 64, 256]))
    def test_align_roundtrip(self, addr, gran):
        down = layout.align_down(addr, gran)
        up = layout.align_up(addr, gran)
        assert down <= addr <= up
        assert down % gran == 0 and up % gran == 0
        assert up - down in (0, gran)


class TestBlocks:
    def test_block_of(self):
        assert layout.block_of(0, 8) == 0
        assert layout.block_of(7, 8) == 0
        assert layout.block_of(8, 8) == 1

    def test_block_range_single(self):
        assert layout.block_range(16, 8, 8) == (2, 2)

    def test_block_range_spanning(self):
        assert layout.block_range(60, 8, 64) == (0, 1)

    def test_block_range_rejects_empty(self):
        with pytest.raises(MemoryAccessError):
            layout.block_range(0, 0, 8)

    def test_blocks_spanned(self):
        assert list(layout.blocks_spanned(0, 24, 8)) == [0, 1, 2]

    @given(st.integers(min_value=0, max_value=1 << 30),
           st.integers(min_value=1, max_value=512),
           st.sampled_from([8, 16, 64, 256]))
    def test_blocks_cover_range(self, addr, size, gran):
        blocks = list(layout.blocks_spanned(addr, size, gran))
        for offset in range(size):
            assert (addr + offset) // gran in blocks
        assert blocks == sorted(set(blocks))


class TestValidateAccess:
    def test_accepts_aligned_word(self):
        layout.validate_access(0x1000, 8)

    def test_accepts_subword(self):
        layout.validate_access(0x1004, 4)

    def test_rejects_word_crossing(self):
        with pytest.raises(MemoryAccessError):
            layout.validate_access(0x1004, 8)

    def test_rejects_oversized(self):
        with pytest.raises(MemoryAccessError):
            layout.validate_access(0x1000, 16)

    def test_rejects_zero_size(self):
        with pytest.raises(MemoryAccessError):
            layout.validate_access(0x1000, 0)

    def test_rejects_negative_address(self):
        with pytest.raises(MemoryAccessError):
            layout.validate_access(-8, 8)


class TestWordsCovering:
    def test_aligned_multiple(self):
        pieces = list(layout.words_covering(0x1000, 24))
        assert pieces == [(0x1000, 8), (0x1008, 8), (0x1010, 8)]

    def test_unaligned_start(self):
        pieces = list(layout.words_covering(0x1004, 8))
        assert pieces == [(0x1004, 4), (0x1008, 4)]

    def test_tail_fragment(self):
        pieces = list(layout.words_covering(0x1000, 12))
        assert pieces == [(0x1000, 8), (0x1008, 4)]

    @given(st.integers(min_value=0, max_value=1 << 20),
           st.integers(min_value=1, max_value=300))
    def test_pieces_are_valid_and_exhaustive(self, addr, size):
        pieces = list(layout.words_covering(addr, size))
        for piece_addr, piece_size in pieces:
            layout.validate_access(piece_addr, piece_size)
        assert sum(piece for _, piece in pieces) == size
        assert pieces[0][0] == addr
        for (a1, s1), (a2, _) in zip(pieces, pieces[1:]):
            assert a1 + s1 == a2
