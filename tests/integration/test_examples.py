"""Every example script must run to completion as a subprocess.

Examples are the adoption surface; a release whose examples crash is
broken regardless of unit-test status.  Sizes are kept small via CLI
arguments where the script accepts them.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

#: script name -> extra argv
EXAMPLES = {
    "quickstart.py": [],
    "wal_workload.py": [],
    "kv_store.py": [],
    "crash_recovery_demo.py": [],
    "filesystem_demo.py": [],
    "transactions_demo.py": [],
    "model_checking_demo.py": [],
    "reproduce_paper.py": ["40"],
}


@pytest.mark.parametrize("script", sorted(EXAMPLES))
def test_example_runs(script):
    completed = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)] + EXAMPLES[script],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{script} produced no output"


def test_example_list_is_complete():
    """Every example on disk is exercised (no silently rotting scripts)."""
    on_disk = {
        path.name
        for path in EXAMPLES_DIR.glob("*.py")
        if path.name != "__init__.py"
    }
    assert on_disk == set(EXAMPLES)
