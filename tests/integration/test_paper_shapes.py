"""Integration: the paper's headline results hold end-to-end.

These tests regenerate (small versions of) Table 1 and Figures 3-5 and
assert the paper's qualitative claims — who wins, by roughly what factor,
and where the crossovers fall.  EXPERIMENTS.md records the corresponding
full-size numbers.
"""

import pytest

from repro.harness import (
    PAPER_PERSIST_LATENCY,
    build_table1,
    figure3_latency_sweep,
    figure4_persist_granularity,
    figure5_tracking_granularity,
)


@pytest.fixture(scope="module")
def table(shared_runner):
    return build_table1(shared_runner, thread_counts=(1, 4))


class TestTable1Shapes:
    def test_strict_cwl_is_persist_bound_by_an_order_of_magnitude(self, table):
        """Paper: 'Copy While Locked with one thread suffers nearly a 30x
        slowdown.'"""
        normalized = table.normalized("cwl", 1, "strict")
        assert normalized < 0.1  # at least 10x slowdown
        assert 0.01 < normalized  # but not absurdly so

    def test_epoch_recovers_most_of_the_loss(self, table):
        """Paper: epoch persistency brings CWL 1-thread within ~6x."""
        strict = table.normalized("cwl", 1, "strict")
        epoch = table.normalized("cwl", 1, "epoch")
        assert epoch > 4 * strict
        assert epoch < 1.0  # still persist-bound, as in the paper

    def test_racing_epochs_scale_with_threads(self, table):
        """Paper: racing epochs let multi-thread CWL surpass instruction
        rate while non-racing epoch stays serialised."""
        racing_multi = table.normalized("cwl", 4, "racing_epochs")
        epoch_multi = table.normalized("cwl", 4, "epoch")
        assert racing_multi > 2 * epoch_multi

    def test_strand_reaches_instruction_rate_everywhere(self, table):
        """Paper: 'all log versions are compute-bound even for a single
        thread' under strand persistency."""
        for design in ("cwl", "2lc"):
            for threads in (1, 4):
                assert table.cell(design, threads, "strand").compute_bound

    def test_2lc_exploits_thread_concurrency_under_epoch(self, table):
        """Paper: eight-thread Two-Lock Concurrent achieves instruction
        rate under epoch persistency (ours: four threads, >= 1)."""
        assert table.normalized("2lc", 4, "epoch") >= 1.0

    def test_2lc_racing_equals_epoch(self, table):
        """Paper: no distinction between Epoch and Racing Epochs for 2LC
        (its concurrency comes from the software design)."""
        epoch = table.normalized("2lc", 4, "epoch")
        racing = table.normalized("2lc", 4, "racing_epochs")
        assert epoch == pytest.approx(racing, rel=0.05)

    def test_strict_2lc_beats_strict_cwl_with_threads(self, table):
        """Under strict persistency only thread concurrency helps; 2LC
        provides it, CWL's single lock does not."""
        assert (
            table.normalized("2lc", 4, "strict")
            > 2 * table.normalized("cwl", 4, "strict")
        )


class TestFigure3Shapes:
    @pytest.fixture(scope="class")
    def figure(self, shared_runner):
        return figure3_latency_sweep(shared_runner)

    def test_breakeven_ordering_and_magnitudes(self, figure):
        """Paper: strict breaks even at ~17 ns, epoch at ~119 ns, strand
        in the microseconds.  Check order of magnitude, not digits."""
        strict = figure.notes["breakeven_strict_s"]
        epoch = figure.notes["breakeven_epoch_s"]
        strand = figure.notes["breakeven_strand_s"]
        assert 5e-9 < strict < 5e-8
        assert 5e-8 < epoch < 5e-7
        assert strand > 1e-6
        assert strict < epoch < strand

    def test_strict_is_persist_bound_at_paper_latency(self, figure):
        """At 500 ns the strict curve must already be falling while the
        strand curve is still flat (compute-bound)."""
        strict = figure.by_name("strict")
        strand = figure.by_name("strand")
        at_500ns_strict = min(
            strict.points, key=lambda p: abs(p[0] - PAPER_PERSIST_LATENCY)
        )[1]
        assert at_500ns_strict < 0.2 * strict.points[0][1]
        at_500ns_strand = min(
            strand.points, key=lambda p: abs(p[0] - PAPER_PERSIST_LATENCY)
        )[1]
        assert at_500ns_strand == pytest.approx(strand.points[0][1], rel=0.01)

    def test_tails_fall_inversely_with_latency(self, figure):
        """Once persist-bound, achievable rate halves as latency doubles."""
        for series in figure.series:
            last_x, last_y = series.points[-1]
            prev_x, prev_y = series.points[-2]
            assert last_y == pytest.approx(prev_y * prev_x / last_x, rel=0.01)


class TestFigure4And5Shapes:
    def test_fig4_strict_converges_to_epoch(self, shared_runner):
        figure = figure4_persist_granularity(shared_runner)
        strict = figure.by_name("strict").ys()
        epoch = figure.by_name("epoch").ys()
        assert all(a >= b for a, b in zip(strict, strict[1:]))  # falling
        assert strict[0] > 5 * epoch[0]  # big gap at 8 bytes
        assert strict[-1] < 1.6 * epoch[-1]  # near-converged at 256 bytes

    def test_fig5_epoch_degrades_to_strict(self, shared_runner):
        figure = figure5_tracking_granularity(shared_runner)
        strict = figure.by_name("strict").ys()
        epoch = figure.by_name("epoch").ys()
        assert max(strict) == pytest.approx(min(strict), rel=0.01)  # flat
        assert all(a <= b for a, b in zip(epoch, epoch[1:]))  # rising
        assert epoch[-1] > 0.5 * strict[-1]  # comparable at 256 bytes
        assert epoch[0] < 0.2 * strict[0]  # far apart at 8 bytes
