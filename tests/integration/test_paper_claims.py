"""Executable checks of the paper's standalone semantic claims."""

import pytest

from repro.core import FailureInjector, analyze, analyze_graph
from repro.memory import NvramImage
from repro.sim import Machine, RandomScheduler


class TestUniprocessorPersistency:
    """Paper Section 4: "even a uniprocessor system requires memory
    persistency as the single processor must still interact with the
    [recovery] observer (i.e., uniprocessor optimizations for cacheable
    volatile memory may be incorrect for persistent memory)."

    One thread, no races, volatile execution trivially correct — yet
    without a persist barrier the recovery observer can see the flag
    without the data.
    """

    def run_publish(self, with_barrier):
        machine = Machine(scheduler=RandomScheduler(seed=1))
        base = machine.persistent_heap.malloc(64)

        def body(ctx):
            yield from ctx.store(base, 0xDA7A)
            if with_barrier:
                yield from ctx.persist_barrier()
            yield from ctx.store(base + 8, 1)  # flag

        machine.spawn(body)
        trace = machine.run()
        image = NvramImage.from_region(
            machine.memory.region("persistent"), blank=True
        )
        graph = analyze_graph(trace, "epoch").graph
        states = []
        for _, failure in FailureInjector(graph, image).prefix_images():
            states.append(
                (failure.read(base + 8, 8), failure.read(base, 8))
            )
        # Also every minimal cut.
        for _, failure in FailureInjector(graph, image).minimal_images():
            states.append(
                (failure.read(base + 8, 8), failure.read(base, 8))
            )
        return states

    def test_barrier_makes_flag_imply_data(self):
        for flag, data in self.run_publish(with_barrier=True):
            if flag:
                assert data == 0xDA7A

    def test_without_barrier_observer_sees_flag_without_data(self):
        broken = [
            (flag, data)
            for flag, data in self.run_publish(with_barrier=False)
            if flag and data != 0xDA7A
        ]
        assert broken  # the uniprocessor still needed persistency


class TestThirtyTimesHeadline:
    """Paper abstract: "relaxed persistency models accelerate system
    throughput 30-fold by reducing NVRAM write constraints"."""

    def test_strand_over_strict_is_at_least_thirty_fold(self, shared_runner):
        strict = shared_runner.point("cwl", 1, "strict")
        strand = shared_runner.point("cwl", 1, "strand")
        # Compare achievable rates at the paper's 500 ns.
        assert strand.achievable >= 30 * strict.achievable


class TestPersistOrderingIsTheBottleneck:
    """Paper Section 8: "persist ordering constraints present a
    performance bottleneck under strict persistency" — i.e., the strict
    configuration is persist-bound while its instruction rate is fine."""

    def test_strict_is_persist_bound_not_compute_bound(self, shared_runner):
        point = shared_runner.point("cwl", 1, "strict")
        assert not point.compute_bound
        assert point.persist_rate < 0.1 * point.instruction_rate


class TestCoalescingEquivalence:
    """Paper Section 8.2: "larger atomic persists provide the same
    improvement to persist critical path as relaxed persistency, but
    offer no improvement to relaxed models"."""

    def test_large_persists_substitute_for_epoch_on_strict(self, cwl_1t):
        from repro.core import AnalysisConfig

        strict_256 = analyze(
            cwl_1t.trace, "strict", AnalysisConfig(persist_granularity=256)
        ).critical_path
        epoch_8 = analyze(cwl_1t.trace, "epoch").critical_path
        assert strict_256 <= 1.6 * epoch_8
