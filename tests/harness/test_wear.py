"""Tests for NVRAM wear profiling."""

from repro.harness.wear import wear_profile

from tests.core.helpers import B, NS, P, S, V, build


class TestWearProfile:
    def test_counts_writes_per_block(self):
        trace = build([(0, S, P, 1), (0, S, P + 8, 2), (0, S, P, 3)])
        profile = wear_profile(trace, "strict", coalescing=False)
        assert profile.writes_per_block == {P // 8: 2, (P + 8) // 8: 1}
        assert profile.total_writes == 3
        assert profile.max_wear == 2
        assert profile.raw_stores == 3
        assert profile.write_reduction == 0.0

    def test_volatile_stores_do_not_wear(self):
        trace = build([(0, S, V, 1), (0, S, P, 2)])
        profile = wear_profile(trace, "epoch")
        assert profile.total_writes == 1
        assert profile.blocks_touched == 1

    def test_coalescing_reduces_wear(self):
        # Same-address persists in one epoch coalesce into one write.
        trace = build([(0, S, P, 1), (0, S, P, 2), (0, S, P, 3)])
        with_coalescing = wear_profile(trace, "epoch", coalescing=True)
        without = wear_profile(trace, "epoch", coalescing=False)
        assert with_coalescing.total_writes == 1
        assert without.total_writes == 3
        assert with_coalescing.write_reduction > 0.6

    def test_hottest_blocks(self):
        trace = build(
            [(0, S, P, 1), (0, B), (0, S, P, 2), (0, B), (0, S, P + 64, 3)]
        )
        profile = wear_profile(trace, "epoch", coalescing=False)
        assert profile.hottest(1) == [(P // 8, 2)]

    def test_mean_wear(self):
        trace = build([(0, S, P, 1), (0, S, P + 64, 2)])
        profile = wear_profile(trace, "epoch")
        assert profile.mean_wear == 1.0

    def test_empty_profile(self):
        trace = build([(0, S, V, 1)])
        profile = wear_profile(trace, "strict")
        assert profile.total_writes == 0
        assert profile.mean_wear == 0.0
        assert profile.max_wear == 0


class TestQueueWear:
    def test_strand_head_coalescing_cuts_head_wear(self, cwl_1t):
        """Under strand persistency consecutive head persists coalesce:
        the head block's wear collapses while data-segment wear is
        untouched."""
        head_block = cwl_1t.queue.head_addr // 8
        epoch = wear_profile(cwl_1t.trace, "epoch")
        strand = wear_profile(cwl_1t.trace, "strand")
        assert strand.writes_per_block[head_block] < (
            epoch.writes_per_block[head_block] / 5
        )
        # Data-segment writes identical: no cross-insert coalescing there.
        data_wear_epoch = {
            block: count
            for block, count in epoch.writes_per_block.items()
            if block != head_block
        }
        data_wear_strand = {
            block: count
            for block, count in strand.writes_per_block.items()
            if block != head_block
        }
        assert data_wear_epoch == data_wear_strand

    def test_write_reduction_reported(self, cwl_1t):
        profile = wear_profile(cwl_1t.trace, "strand")
        assert 0.0 < profile.write_reduction < 1.0
        assert profile.raw_stores == cwl_1t.trace.stats().persists
