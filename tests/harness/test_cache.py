"""Tests for the content-addressed on-disk trace/analysis cache."""

import json
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.core import AnalysisConfig, analyze
from repro.harness import (
    DiskCache,
    ExperimentRunner,
    analysis_from_payload,
    analysis_key,
    analysis_to_payload,
    workload_key,
)
from repro.harness.cache import HarnessStats, atomic_write
from repro.queue.workload import WorkloadConfig


def _hammer_key(task):
    """Worker: write one key many times (module-level for the pool)."""
    path, writer_id, rounds = task
    for round_index in range(rounds):
        payload = {"writer": writer_id, "round": round_index, "pad": "x" * 4096}
        atomic_write(path, lambda stream: json.dump(payload, stream))
    return writer_id


@pytest.fixture
def cache(tmp_path):
    return DiskCache(tmp_path / "cache")


@pytest.fixture
def wconfig():
    return WorkloadConfig(design="cwl", threads=1, inserts_per_thread=8, seed=7)


class TestKeys:
    def test_stable_across_instances(self, wconfig):
        other = WorkloadConfig(
            design="cwl", threads=1, inserts_per_thread=8, seed=7
        )
        assert workload_key(wconfig) == workload_key(other)

    def test_every_field_matters(self, wconfig):
        for override in (
            {"design": "2lc"},
            {"threads": 2},
            {"inserts_per_thread": 9},
            {"entry_size": 48},
            {"racing": True},
            {"lock_kind": "ticket"},
            {"seed": 8},
            {"consistency": "tso"},
        ):
            fields = {**wconfig.__dict__, **override}
            assert workload_key(WorkloadConfig(**fields)) != workload_key(
                wconfig
            )

    def test_analysis_key_depends_on_model_and_config(self, wconfig):
        base = analysis_key(wconfig, "epoch", AnalysisConfig())
        assert analysis_key(wconfig, "strict", AnalysisConfig()) != base
        assert (
            analysis_key(
                wconfig, "epoch", AnalysisConfig(persist_granularity=64)
            )
            != base
        )
        assert analysis_key(wconfig, "epoch", AnalysisConfig()) == base


class TestAnalysisPayload:
    def test_roundtrip_equality(self, cwl_1t):
        result = analyze(cwl_1t.trace, "epoch")
        rebuilt = analysis_from_payload(
            json.loads(json.dumps(analysis_to_payload(result)))
        )
        assert rebuilt == result

    def test_malformed_payload_rejected(self):
        from repro.errors import CacheError

        with pytest.raises(CacheError):
            analysis_from_payload({"model": "epoch"})


class TestDiskCache:
    def test_trace_miss_populate_hit(self, cache, wconfig, cwl_1t):
        assert cache.load_trace(wconfig) is None
        cache.store_trace(wconfig, cwl_1t.trace)
        loaded = cache.load_trace(wconfig)
        assert loaded is not None
        assert list(loaded) == list(cwl_1t.trace)
        assert loaded.meta == cwl_1t.trace.meta

    def test_analysis_miss_populate_hit(self, cache, wconfig, cwl_1t):
        config = AnalysisConfig(persist_granularity=16)
        assert cache.load_analysis(wconfig, "epoch", config) is None
        result = analyze(cwl_1t.trace, "epoch", config)
        cache.store_analysis(wconfig, "epoch", config, result)
        assert cache.load_analysis(wconfig, "epoch", config) == result

    def test_corrupted_trace_is_miss_and_evicted(self, cache, wconfig, cwl_1t):
        cache.store_trace(wconfig, cwl_1t.trace)
        path = cache.trace_path(workload_key(wconfig))
        path.write_text('{"meta": ["not", "a", "dict"]}\n')
        assert cache.load_trace(wconfig) is None
        assert not path.exists()
        assert cache.stats.cache_evictions == 1

    def test_truncated_trace_is_miss(self, cache, wconfig, cwl_1t):
        cache.store_trace(wconfig, cwl_1t.trace)
        path = cache.trace_path(workload_key(wconfig))
        text = path.read_text()
        path.write_text(text[: len(text) // 2].rsplit("\n", 1)[0] + '\n{"se')
        assert cache.load_trace(wconfig) is None
        assert not path.exists()

    def test_non_utf8_trace_is_miss_and_evicted(self, cache, wconfig, cwl_1t):
        cache.store_trace(wconfig, cwl_1t.trace)
        path = cache.trace_path(workload_key(wconfig))
        path.write_bytes(b"\xff\xfe\x80 not utf-8 \x00")
        assert cache.load_trace(wconfig) is None
        assert not path.exists()
        assert cache.stats.cache_evictions == 1

    def test_non_utf8_analysis_is_miss_and_evicted(
        self, cache, wconfig, cwl_1t
    ):
        config = AnalysisConfig()
        result = analyze(cwl_1t.trace, "epoch", config)
        cache.store_analysis(wconfig, "epoch", config, result)
        path = cache.analysis_path(analysis_key(wconfig, "epoch", config))
        path.write_bytes(b'{"model": "\x80\xff"}')
        assert cache.load_analysis(wconfig, "epoch", config) is None
        assert not path.exists()
        assert cache.stats.cache_evictions == 1

    def test_corrupted_analysis_is_miss_and_evicted(
        self, cache, wconfig, cwl_1t
    ):
        config = AnalysisConfig()
        result = analyze(cwl_1t.trace, "strand", config)
        cache.store_analysis(wconfig, "strand", config, result)
        path = cache.analysis_path(analysis_key(wconfig, "strand", config))
        path.write_text("{not json")
        assert cache.load_analysis(wconfig, "strand", config) is None
        assert not path.exists()
        assert cache.stats.cache_evictions == 1

    def test_graph_results_not_cached(self, cache, wconfig, cwl_1t):
        from repro.core import analyze_graph

        config = AnalysisConfig(coalescing=False)
        result = analyze_graph(cwl_1t.trace, "epoch", config)
        cache.store_analysis(wconfig, "epoch", config, result)
        assert cache.load_analysis(wconfig, "epoch", config) is None


class TestAtomicWriteConcurrency:
    def test_eight_processes_hammering_one_key(self, tmp_path):
        """Regression for the concurrent-writer race: N processes racing
        ``atomic_write`` on a single key must leave exactly one complete
        payload (last-writer-wins) and no stray temp files."""
        path = tmp_path / "entry.json"
        tasks = [(str(path), writer, 25) for writer in range(8)]
        with ProcessPoolExecutor(max_workers=8) as pool:
            assert sorted(pool.map(_hammer_key, tasks)) == list(range(8))
        payload = json.loads(path.read_text())
        assert payload["writer"] in range(8)
        assert payload["round"] == 24
        assert payload["pad"] == "x" * 4096
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_failed_writer_leaves_old_entry_and_no_temp(self, tmp_path):
        path = tmp_path / "entry.json"
        atomic_write(path, lambda stream: stream.write('{"ok": true}'))

        def explode(stream):
            stream.write("half-written garbage")
            raise RuntimeError("writer died")

        with pytest.raises(RuntimeError, match="writer died"):
            atomic_write(path, explode)
        assert json.loads(path.read_text()) == {"ok": True}
        assert [p for p in tmp_path.iterdir()] == [path]


class TestHarnessStatsWire:
    def test_merge_roundtrip_through_payload(self):
        first = HarnessStats(
            workload_runs=3,
            trace_seconds=1.5,
            task_attempts=7,
            task_failures=2,
            failure_exception_types={"TimeoutError": 1, "RecoveryError": 1},
            store_hits=4,
            store_misses=2,
        )
        second = HarnessStats(
            analysis_runs=5,
            task_attempts=1,
            failure_exception_types={"TimeoutError": 2},
            store_hits=1,
        )
        direct = HarnessStats()
        direct.merge(first)
        direct.merge(second)

        rebuilt = HarnessStats()
        for stats in (first, second):
            wire = json.loads(json.dumps(stats.to_payload()))
            rebuilt.merge(HarnessStats.from_payload(wire))
        assert rebuilt == direct
        assert rebuilt.failure_exception_types == {
            "TimeoutError": 3,
            "RecoveryError": 1,
        }

    def test_payload_copies_dict_counters(self):
        stats = HarnessStats(failure_exception_types={"ValueError": 1})
        payload = stats.to_payload()
        payload["failure_exception_types"]["ValueError"] = 99
        assert stats.failure_exception_types == {"ValueError": 1}

    def test_missing_and_unknown_fields_tolerated(self):
        rebuilt = HarnessStats.from_payload(
            {"workload_runs": 2, "not_a_field": "ignored"}
        )
        assert rebuilt.workload_runs == 2
        assert rebuilt.store_hits == 0

    def test_malformed_payload_rejected(self):
        from repro.errors import CacheError

        with pytest.raises(CacheError):
            HarnessStats.from_payload(["workload_runs"])

    def test_report_mentions_store_only_when_used(self):
        assert "store" not in HarnessStats().report()
        used = HarnessStats(store_hits=3, store_misses=1)
        assert "3/4 shard(s) served" in used.report()


class TestRunnerIntegration:
    def test_cold_then_warm_runner(self, tmp_path):
        def make():
            return ExperimentRunner(
                inserts_per_thread=6,
                base_seed=5,
                cache=DiskCache(tmp_path / "cache"),
            )

        cold = make()
        first = cold.point("cwl", 2, "epoch")
        assert cold.stats.workload_runs == 1
        assert cold.stats.analysis_runs == 1

        warm = make()
        second = warm.point("cwl", 2, "epoch")
        assert second == first
        assert warm.stats.workload_runs == 0
        assert warm.stats.analysis_runs == 0
        assert warm.stats.workload_disk_hits >= 1
        assert warm.stats.analysis_disk_hits == 1

    def test_cache_results_equal_uncached(self, tmp_path):
        cached = ExperimentRunner(
            inserts_per_thread=6, base_seed=5, cache=DiskCache(tmp_path / "c")
        )
        plain = ExperimentRunner(inserts_per_thread=6, base_seed=5)
        for column in ("strict", "epoch", "racing_epochs", "strand"):
            assert cached.point("cwl", 2, column) == plain.point(
                "cwl", 2, column
            )
