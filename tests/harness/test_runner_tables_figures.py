"""Tests for the runner, Table 1 builder, and figure generators."""

import pytest

from repro.core import AnalysisConfig
from repro.errors import AnalysisError
from repro.harness import (
    ExperimentRunner,
    build_table1,
    figure2_dependences,
    figure3_latency_sweep,
    figure4_persist_granularity,
    figure5_tracking_granularity,
    format_table1,
    log_space,
    table1_rows,
)


class TestRunner:
    def test_workloads_cached(self, shared_runner):
        first = shared_runner.workload("cwl", 1, False)
        second = shared_runner.workload("cwl", 1, False)
        assert first is second

    def test_analyses_cached(self, shared_runner):
        first = shared_runner.analysis("cwl", 1, False, "epoch")
        second = shared_runner.analysis("cwl", 1, False, "epoch")
        assert first is second

    def test_distinct_configs_not_conflated(self, shared_runner):
        fine = shared_runner.analysis(
            "cwl", 1, False, "strict", AnalysisConfig(persist_granularity=8)
        )
        coarse = shared_runner.analysis(
            "cwl", 1, False, "strict", AnalysisConfig(persist_granularity=256)
        )
        assert fine.critical_path > coarse.critical_path

    def test_unknown_column_rejected(self, shared_runner):
        with pytest.raises(AnalysisError):
            shared_runner.point("cwl", 1, "release", 500e-9)

    def test_point_fields(self, shared_runner):
        point = shared_runner.point("cwl", 1, "strict", 500e-9)
        assert point.operations == 40
        assert point.critical_path > 0
        assert point.instruction_rate > 0


class TestTable1:
    @pytest.fixture(scope="class")
    def table(self, shared_runner):
        return build_table1(shared_runner, thread_counts=(1, 2))

    def test_all_cells_present(self, table):
        assert len(table.cells) == 2 * 2 * 4

    def test_rows_flattening(self, table):
        rows = table1_rows(table)
        assert len(rows) == 16
        assert {row["design"] for row in rows} == {"cwl", "2lc"}

    def test_formatting_contains_all_columns(self, table):
        text = format_table1(table)
        for label in ("Strict", "Epoch", "Racing Epochs", "Strand"):
            assert label in text
        assert "Copy While Locked" in text and "Two-Lock Concurrent" in text

    def test_paper_ordering_invariants(self, table):
        """Within every (design, threads) row the models can only improve
        left to right: strict <= epoch <= racing epochs (on normalized
        persist-bound throughput) and strand is the best."""
        for design in ("cwl", "2lc"):
            for threads in (1, 2):
                strict = table.normalized(design, threads, "strict")
                epoch = table.normalized(design, threads, "epoch")
                racing = table.normalized(design, threads, "racing_epochs")
                strand = table.normalized(design, threads, "strand")
                assert strict <= epoch * 1.05
                assert epoch <= racing * 1.25  # instr-rate wobble allowed
                assert strand >= max(strict, epoch, racing)


class TestFigures:
    def test_log_space_endpoints(self):
        values = log_space(1e-8, 1e-4, 5)
        assert values[0] == pytest.approx(1e-8)
        assert values[-1] == pytest.approx(1e-4)
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_figure3_series_and_notes(self, shared_runner):
        figure = figure3_latency_sweep(
            shared_runner, latencies=log_space(1e-8, 1e-4, 9)
        )
        assert {s.name for s in figure.series} == {"strict", "epoch", "strand"}
        for series in figure.series:
            ys = series.ys()
            assert all(a >= b for a, b in zip(ys, ys[1:]))  # non-increasing
        assert (
            figure.notes["breakeven_strict_s"]
            < figure.notes["breakeven_epoch_s"]
            < figure.notes["breakeven_strand_s"]
        )

    def test_figure3_flat_then_falling(self, shared_runner):
        figure = figure3_latency_sweep(
            shared_runner, latencies=log_space(1e-9, 1e-3, 13)
        )
        for series in figure.series:
            ys = series.ys()
            # Compute-bound plateau at the left end for relaxed models,
            # persist-bound tail at the right for all.
            assert ys[-1] < ys[0]

    def test_figure4_csv_roundtrip(self, shared_runner, tmp_path):
        figure = figure4_persist_granularity(shared_runner)
        path = tmp_path / "fig4.csv"
        figure.to_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("persist_granularity_bytes,")
        assert len(lines) == 1 + 6

    def test_figure5_render_smoke(self, shared_runner):
        figure = figure5_tracking_granularity(shared_runner)
        text = figure.render()
        assert "Figure 5" in text and "strict" in text

    def test_by_name_lookup(self, shared_runner):
        figure = figure4_persist_granularity(shared_runner)
        assert figure.by_name("epoch").name == "epoch"
        with pytest.raises(KeyError):
            figure.by_name("tso")

    def test_figure2_dependence_classes(self, shared_runner):
        summary = figure2_dependences(shared_runner)
        constraints = summary.constraints_per_insert
        assert constraints["strict"] > constraints["epoch"] > constraints["strand"]
        assert summary.removed_by_epoch > 0
        assert summary.removed_by_strand > 0
