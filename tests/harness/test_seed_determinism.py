"""Regression tests: scheduler seeds must not depend on interpreter state.

The original derivation used the builtin ``hash`` over the variant key,
which Python salts per process (PYTHONHASHSEED), so "deterministic"
experiments differed across interpreter invocations and no cross-process
cache key was sound.  These tests pin the replacement derivation and
prove it stable under mismatched hash seeds via real subprocesses.
"""

import os
import subprocess
import sys
import zlib
from pathlib import Path

from repro.harness import ExperimentRunner, derive_seed
from repro.harness.runner import SEED_SPACE

_SRC = str(Path(__file__).resolve().parents[2] / "src")

#: Prints the derived seeds for a handful of variants.
_PROBE = (
    "from repro.harness import ExperimentRunner, derive_seed;"
    "r = ExperimentRunner(inserts_per_thread=5, base_seed=3);"
    "keys = [('cwl', 1, False), ('cwl', 4, True), ('2lc', 8, False)];"
    "print([derive_seed(3, k) for k in keys]);"
    "print([r.workload_config(*k).seed for k in keys])"
)


def _probe_seeds(hash_seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hash_seed
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-c", _PROBE],
        env=env,
        check=True,
        capture_output=True,
        text=True,
    ).stdout


class TestDeriveSeed:
    def test_mix_and_precedence(self):
        """The modulus applies to the whole mix (the old code's
        ``a * 1009 + hash(key) % 100_000`` bound ``%`` to the hash only)."""
        key = ("cwl", 2, False)
        mix = zlib.crc32(repr(key).encode("utf-8"))
        assert derive_seed(7, key) == (7 * 1009 + mix) % SEED_SPACE

    def test_seed_in_range(self):
        for base in (0, 1, 99, 12345):
            for key in [("cwl", t, r) for t in (1, 8) for r in (False, True)]:
                assert 0 <= derive_seed(base, key) < SEED_SPACE

    def test_variants_get_distinct_seeds(self):
        seeds = {
            derive_seed(3, (design, threads, racing))
            for design in ("cwl", "2lc")
            for threads in (1, 2, 4, 8)
            for racing in (False, True)
        }
        assert len(seeds) == 16

    def test_runner_uses_derived_seed(self):
        runner = ExperimentRunner(inserts_per_thread=5, base_seed=9)
        config = runner.workload_config("cwl", 2, False)
        assert config.seed == derive_seed(9, ("cwl", 2, False))


class TestCrossProcessStability:
    def test_same_seeds_under_mismatched_pythonhashseed(self):
        first = _probe_seeds("0")
        second = _probe_seeds("424242")
        third = _probe_seeds("random")
        assert first == second == third

    def test_subprocess_matches_in_process(self):
        out = _probe_seeds("1")
        expected = [
            derive_seed(3, key)
            for key in [("cwl", 1, False), ("cwl", 4, True), ("2lc", 8, False)]
        ]
        assert out.splitlines()[0] == str(expected)
