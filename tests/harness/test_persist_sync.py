"""Tests for persist sync (paper Section 4.1) and schedule extraction."""

import pytest

from repro.core import analyze
from repro.harness import InstructionCostModel
from repro.nvramdev import (
    BufferedStrictConfig,
    buffered_strict_time,
    schedule_from_trace,
)
from repro.sim import Machine, RoundRobinScheduler
from repro.trace import EventKind, validate

MODEL = InstructionCostModel(cycles_per_event=10, clock_hz=1e9)


def run_program(body):
    machine = Machine(scheduler=RoundRobinScheduler())
    cell = machine.persistent_heap.malloc(256)
    thread = machine.spawn(body, cell)
    trace = machine.run()
    validate(trace)
    return machine, cell, trace, thread


class TestPersistSyncEvent:
    def test_context_emits_event(self):
        def body(ctx, cell):
            yield from ctx.store(cell, 1)
            yield from ctx.persist_sync()

        _, _, trace, _ = run_program(body)
        kinds = [event.kind for event in trace]
        assert EventKind.PERSIST_SYNC in kinds

    def test_analyzers_ignore_persist_sync(self):
        def with_sync(ctx, cell):
            yield from ctx.store(cell, 1)
            yield from ctx.persist_sync()
            yield from ctx.store(cell + 64, 2)

        def without_sync(ctx, cell):
            yield from ctx.store(cell, 1)
            yield from ctx.store(cell + 64, 2)

        _, _, synced, _ = run_program(with_sync)
        _, _, plain, _ = run_program(without_sync)
        for model in ("strict", "epoch", "strand"):
            assert (
                analyze(synced, model).critical_path
                == analyze(plain, model).critical_path
            )

    def test_roundtrips_through_serialization(self, tmp_path):
        from repro.trace import load_file, save_file

        def body(ctx, cell):
            yield from ctx.persist_sync()

        _, _, trace, _ = run_program(body)
        path = tmp_path / "sync.jsonl"
        save_file(trace, path)
        assert any(
            event.kind is EventKind.PERSIST_SYNC for event in load_file(path)
        )


class TestScheduleExtraction:
    def test_counts_and_ordering(self):
        def body(ctx, cell):
            for i in range(4):
                yield from ctx.store(cell + 8 * i, i + 1)
            yield from ctx.persist_sync()
            yield from ctx.store(cell + 64, 9)

        _, _, trace, _ = run_program(body)
        schedule = schedule_from_trace(trace, MODEL)
        assert len(schedule.persist_times) == 5
        assert len(schedule.sync_times) == 1
        assert schedule.persist_times == sorted(schedule.persist_times)
        # The sync falls between the fourth and fifth persists.
        assert (
            schedule.persist_times[3]
            < schedule.sync_times[0]
            < schedule.persist_times[4]
        )
        assert schedule.execution_time >= schedule.persist_times[-1]

    def test_volatile_trace_has_empty_schedule(self):
        machine = Machine()
        cell = machine.volatile_heap.malloc(8)

        def body(ctx):
            yield from ctx.store(cell, 1)

        machine.spawn(body)
        trace = machine.run()
        schedule = schedule_from_trace(trace, MODEL)
        assert schedule.persist_times == []
        assert schedule.execution_time > 0


class TestSyncCostEndToEnd:
    def test_sync_stalls_buffered_strict(self):
        """The same program with and without persist syncs: syncs add
        stall time in the buffered-strict timing model."""

        def make_body(with_sync):
            def body(ctx, cell):
                for i in range(8):
                    yield from ctx.store(cell + 8 * (i % 4), i + 1)
                    if with_sync:
                        yield from ctx.persist_sync()
            return body

        results = {}
        for with_sync in (False, True):
            _, _, trace, _ = run_program(make_body(with_sync))
            schedule = schedule_from_trace(trace, MODEL)
            results[with_sync] = buffered_strict_time(
                schedule.persist_times,
                schedule.execution_time,
                BufferedStrictConfig(persist_latency=1e-6, depth=64),
                sync_times=schedule.sync_times,
            )
        assert results[True].stall_time > results[False].stall_time
        assert results[True].total_time > results[False].total_time
        assert results[True].syncs == 8
