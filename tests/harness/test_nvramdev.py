"""Tests for the finite NVRAM device timing models (extension)."""

import pytest

from repro.core import analyze_graph
from repro.errors import AnalysisError
from repro.nvramdev import (
    BufferedStrictConfig,
    DeviceConfig,
    buffered_strict_time,
    drain_time,
)

LATENCY = 500e-9


class TestDrain:
    def test_empty_graph(self, cwl_1t):
        from repro.core import GraphDomain

        result = drain_time(GraphDomain(), DeviceConfig(LATENCY, 4))
        assert result.total_time == 0.0
        assert result.persists == 0

    def test_many_banks_approach_constraint_bound(self, cwl_1t):
        # Word-granular interleave (bank_bits_ignored=3) gives every word
        # of a record its own bank, so the constraint critical path is the
        # only remaining serialisation.
        graph = analyze_graph(cwl_1t.trace, "epoch").graph
        result = drain_time(
            graph, DeviceConfig(LATENCY, banks=4096, bank_bits_ignored=3)
        )
        assert result.total_time == pytest.approx(
            result.constraint_bound, rel=0.35
        )

    def test_coarse_interleave_serialises_record_words(self, cwl_1t):
        # With a 64-byte interleave the ~14 word persists of each record
        # land on two banks, so even unlimited banks stay well above the
        # constraint bound — the bank-conflict delay the paper's
        # methodology abstracts away (Section 7).
        graph = analyze_graph(cwl_1t.trace, "epoch").graph
        coarse = drain_time(
            graph, DeviceConfig(LATENCY, banks=4096, bank_bits_ignored=6)
        )
        assert coarse.total_time > 2 * coarse.constraint_bound

    def test_single_bank_is_fully_serial(self, cwl_1t):
        graph = analyze_graph(cwl_1t.trace, "epoch").graph
        result = drain_time(graph, DeviceConfig(LATENCY, banks=1))
        assert result.total_time == pytest.approx(
            len(graph.nodes) * LATENCY
        )

    def test_time_monotone_in_banks(self, cwl_1t):
        graph = analyze_graph(cwl_1t.trace, "strand").graph
        times = [
            drain_time(graph, DeviceConfig(LATENCY, banks=b)).total_time
            for b in (1, 2, 8, 64)
        ]
        assert all(a >= b for a, b in zip(times, times[1:]))

    def test_bounds_are_lower_bounds(self, cwl_4t):
        graph = analyze_graph(cwl_4t.trace, "epoch").graph
        for banks in (1, 4, 32):
            result = drain_time(graph, DeviceConfig(LATENCY, banks=banks))
            assert result.total_time >= result.constraint_bound - 1e-12
            assert result.total_time >= result.bandwidth_bound - 1e-12
            assert 0 < result.efficiency <= 1.0

    def test_config_validation(self):
        with pytest.raises(AnalysisError):
            DeviceConfig(persist_latency=0).validate()
        with pytest.raises(AnalysisError):
            DeviceConfig(banks=0).validate()
        with pytest.raises(AnalysisError):
            DeviceConfig(bank_bits_ignored=-1).validate()


class TestBufferedStrict:
    def test_sparse_persists_never_stall(self):
        config = BufferedStrictConfig(persist_latency=1e-6, depth=8)
        # One persist every 10 us: drain keeps up trivially.
        times = [i * 1e-5 for i in range(10)]
        result = buffered_strict_time(times, execution_time=1e-4, config=config)
        assert result.stall_time == 0.0
        assert result.total_time == pytest.approx(
            max(1e-4, times[-1] + 1e-6)
        )

    def test_burst_fills_buffer_and_stalls(self):
        config = BufferedStrictConfig(persist_latency=1e-6, depth=4)
        times = [0.0] * 32  # 32 persists generated instantaneously
        result = buffered_strict_time(times, execution_time=1e-6, config=config)
        assert result.stall_time > 0.0
        # Drain is serial: total time is at least 32 persists' worth.
        assert result.total_time >= 32 * 1e-6

    def test_deeper_buffer_reduces_stall(self):
        times = [i * 1e-7 for i in range(64)]  # faster than drain
        shallow = buffered_strict_time(
            times, 64e-7, BufferedStrictConfig(1e-6, depth=2)
        )
        deep = buffered_strict_time(
            times, 64e-7, BufferedStrictConfig(1e-6, depth=64)
        )
        assert deep.stall_time <= shallow.stall_time
        assert deep.total_time <= shallow.total_time

    def test_sync_waits_for_queue(self):
        config = BufferedStrictConfig(persist_latency=1e-6, depth=64)
        times = [0.0] * 8
        no_sync = buffered_strict_time(times, 1e-5, config)
        with_sync = buffered_strict_time(
            times, 1e-5, config, sync_times=[1e-7]
        )
        assert with_sync.stall_time > no_sync.stall_time
        assert with_sync.syncs == 1

    def test_slowdown_at_least_one(self):
        config = BufferedStrictConfig(persist_latency=1e-6, depth=4)
        times = [i * 1e-7 for i in range(100)]
        result = buffered_strict_time(times, 1e-5, config)
        assert result.slowdown >= 1.0

    def test_config_validation(self):
        with pytest.raises(AnalysisError):
            BufferedStrictConfig(persist_latency=0).validate()
        with pytest.raises(AnalysisError):
            BufferedStrictConfig(depth=0).validate()
