"""Tests for the dependency-free SVG chart writer."""

import xml.etree.ElementTree as ElementTree

import pytest

from repro.harness import figure3_latency_sweep, figure4_persist_granularity
from repro.harness.svg import render_line_chart

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ElementTree.fromstring(svg_text)


class TestRenderLineChart:
    def sample(self, **kwargs):
        return render_line_chart(
            [
                ("alpha", [(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)]),
                ("beta", [(1.0, 2.0), (2.0, 2.0), (3.0, 2.0)]),
            ],
            title="A <title> & more",
            x_label="x",
            y_label="y",
            **kwargs,
        )

    def test_is_well_formed_xml(self):
        root = parse(self.sample())
        assert root.tag == f"{SVG_NS}svg"

    def test_one_polyline_per_series(self):
        root = parse(self.sample())
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 2
        for polyline in polylines:
            assert len(polyline.get("points").split()) == 3

    def test_title_escaped(self):
        text = self.sample()
        assert "&lt;title&gt;" in text and "&amp;" in text

    def test_legend_contains_series_names(self):
        root = parse(self.sample())
        labels = {t.text for t in root.findall(f"{SVG_NS}text")}
        assert {"alpha", "beta"} <= labels

    def test_log_axes(self):
        text = render_line_chart(
            [("s", [(1e-9, 1e3), (1e-6, 1e6), (1e-3, 1e9)])],
            title="log",
            x_label="x",
            y_label="y",
            log_x=True,
            log_y=True,
        )
        parse(text)

    def test_log_x_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            render_line_chart(
                [("s", [(0.0, 1.0), (1.0, 2.0)])],
                title="t",
                x_label="x",
                y_label="y",
                log_x=True,
            )

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_line_chart([("s", [])], title="t", x_label="x", y_label="y")

    def test_constant_series_renders(self):
        parse(
            render_line_chart(
                [("s", [(1.0, 5.0), (2.0, 5.0)])],
                title="flat",
                x_label="x",
                y_label="y",
            )
        )


class TestFigureToSvg:
    def test_fig3_writes_log_chart(self, shared_runner, tmp_path):
        figure = figure3_latency_sweep(shared_runner)
        path = tmp_path / "fig3.svg"
        figure.to_svg(path, log_y=True)
        root = parse(path.read_text())
        assert len(root.findall(f"{SVG_NS}polyline")) == 3

    def test_fig4_auto_linear(self, shared_runner, tmp_path):
        figure = figure4_persist_granularity(shared_runner)
        path = tmp_path / "fig4.svg"
        figure.to_svg(path)
        assert path.read_text().startswith("<svg")
