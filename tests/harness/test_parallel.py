"""Tests for the parallel grid executor: parity with serial execution."""

import time

import pytest

from repro.cli import main
from repro.harness import (
    DiskCache,
    ExperimentRunner,
    GridCell,
    HarnessStats,
    build_table1,
    dedup_cells,
    fan_out,
    figure_cells,
    format_table1,
    run_grid,
    table1_cells,
)

INSERTS = 6
THREADS = (1, 2)


def fresh_runner(cache_dir=None):
    return ExperimentRunner(
        inserts_per_thread=INSERTS,
        base_seed=4,
        cache=DiskCache(cache_dir) if cache_dir else None,
    )


class TestGrid:
    def test_table1_cells_cover_the_table(self):
        cells = table1_cells(THREADS)
        assert len(cells) == 2 * 2 * 4
        assert {c.design for c in cells} == {"cwl", "2lc"}

    def test_figure_cells_cover_figures_3_to_5(self):
        cells = figure_cells()
        models = {c.model for c in cells}
        assert models == {"strict", "epoch", "strand"}
        assert any(c.persist_granularity == 256 for c in cells)
        assert any(c.tracking_granularity == 256 for c in cells)

    def test_dedup_normalises_racing_insensitive_designs(self):
        cells = dedup_cells(
            [
                GridCell("2lc", 1, True, "epoch"),
                GridCell("2lc", 1, False, "epoch"),
                GridCell("cwl", 1, True, "epoch"),
            ]
        )
        assert len(cells) == 2
        assert all(
            not cell.racing for cell in cells if cell.design == "2lc"
        )


class TestParallelParity:
    @pytest.fixture(scope="class")
    def serial_table(self):
        runner = fresh_runner()
        run_grid(runner, table1_cells(THREADS), jobs=1)
        return format_table1(build_table1(runner, thread_counts=THREADS))

    def test_parallel_table_identical(self, serial_table):
        runner = fresh_runner()
        run_grid(runner, table1_cells(THREADS), jobs=2)
        table = format_table1(build_table1(runner, thread_counts=THREADS))
        assert table == serial_table

    def test_parallel_populates_runner_caches(self):
        runner = fresh_runner()
        run_grid(runner, table1_cells(THREADS), jobs=2)
        # Worker stats merge into the parent: same total work as serial.
        assert runner.stats.workload_runs == 6
        assert runner.stats.analysis_runs == 14
        # Building the table afterwards re-traces and re-analyzes nothing.
        build_table1(runner, thread_counts=THREADS)
        assert runner.stats.workload_runs == 6
        assert runner.stats.analysis_runs == 14

    def test_parallel_analysis_equals_serial(self):
        serial = fresh_runner()
        parallel = fresh_runner()
        cells = dedup_cells(table1_cells(THREADS))
        run_grid(serial, cells, jobs=1)
        run_grid(parallel, cells, jobs=2)
        for cell in cells:
            design, threads, racing = cell.variant
            assert parallel.analysis(
                design, threads, racing, cell.model, cell.analysis_config()
            ) == serial.analysis(
                design, threads, racing, cell.model, cell.analysis_config()
            )


def _sleepy_worker(task):
    """Module-level (pool-picklable) worker that sleeps then echoes."""
    time.sleep(task.get("sleep", 0.0))
    return task


def _failing_worker(task):
    raise RuntimeError(f"boom on {task['name']}")


class TestFanOutResilience:
    def test_serial_retry_recovers_flaky_worker(self):
        attempts = {"n": 0}

        def flaky(task):
            attempts["n"] += 1
            if attempts["n"] < 2:
                raise RuntimeError("transient")
            return task

        merged = []
        stats = HarnessStats()
        fan_out(
            flaky, [{"name": "only"}], jobs=1, merge=merged.append,
            retries=2, backoff=0.0, stats=stats,
        )
        assert merged == [{"name": "only"}]
        assert stats.task_retries == 1
        assert stats.task_failures == 0
        assert stats.task_attempts == 2
        assert stats.failure_exception_types == {}

    def test_serial_exhausted_retries_fail_the_cell_not_the_run(self):
        merged = []
        failures = []
        stats = HarnessStats()
        fan_out(
            _failing_worker,
            [{"name": "a"}, {"name": "b"}],
            jobs=1,
            merge=merged.append,
            retries=1,
            backoff=0.0,
            on_failure=lambda task, error: failures.append((task, error)),
            stats=stats,
        )
        assert merged == []
        assert [task["name"] for task, _ in failures] == ["a", "b"]
        assert all("boom" in error for _, error in failures)
        assert stats.task_retries == 2
        assert stats.task_failures == 2
        assert stats.task_timeouts == 0
        # Two tasks, two attempts each (one retry per task).
        assert stats.task_attempts == 4
        assert stats.failure_exception_types == {"RuntimeError": 2}

    def test_serial_default_failure_path_warns(self):
        with pytest.warns(RuntimeWarning, match="failed after 1 attempt"):
            fan_out(
                _failing_worker, [{"name": "x"}], jobs=1,
                merge=lambda result: None,
            )

    def test_pool_retries_exhaust_and_record(self):
        failures = []
        stats = HarnessStats()
        fan_out(
            _failing_worker,
            [{"name": "p"}],
            jobs=2,
            merge=lambda result: None,
            retries=2,
            backoff=0.01,
            on_failure=lambda task, error: failures.append(error),
            stats=stats,
        )
        assert len(failures) == 1 and "boom on p" in failures[0]
        assert stats.task_retries == 2
        assert stats.task_failures == 1
        assert stats.task_attempts == 3
        assert stats.failure_exception_types == {"RuntimeError": 1}

    def test_pool_timeout_fails_slow_task_and_keeps_fast_one(self):
        merged = []
        failures = []
        stats = HarnessStats()
        fan_out(
            _sleepy_worker,
            [{"name": "slow", "sleep": 1.5}, {"name": "fast"}],
            jobs=2,
            merge=merged.append,
            timeout=0.3,
            on_failure=lambda task, error: failures.append((task, error)),
            stats=stats,
        )
        assert [task["name"] for task in merged] == ["fast"]
        assert len(failures) == 1
        assert failures[0][0]["name"] == "slow"
        assert "timed out after" in failures[0][1]
        assert stats.task_timeouts == 1
        assert stats.task_failures == 1
        assert stats.failure_exception_types == {"TimeoutError": 1}

    def test_stats_report_includes_task_counters(self):
        stats = HarnessStats(task_retries=3, task_timeouts=1, task_failures=2)
        report = stats.report()
        assert "3 retrie(s)" in report
        assert "1 timeout(s)" in report
        assert "2 failed cell(s)" in report

    def test_stats_report_names_failure_exception_types(self):
        stats = HarnessStats(
            task_attempts=5,
            task_failures=2,
            failure_exception_types={"RuntimeError": 1, "TimeoutError": 1},
        )
        report = stats.report()
        assert "5 attempt(s)" in report
        assert "RuntimeError x1" in report
        assert "TimeoutError x1" in report

    def test_stats_merge_folds_exception_type_counts(self):
        mine = HarnessStats(
            task_failures=1, failure_exception_types={"RuntimeError": 1}
        )
        theirs = HarnessStats(
            task_failures=2,
            failure_exception_types={"RuntimeError": 1, "ValueError": 1},
        )
        mine.merge(theirs)
        assert mine.task_failures == 3
        assert mine.failure_exception_types == {
            "RuntimeError": 2,
            "ValueError": 1,
        }

    def test_grid_timeout_records_failed_cells_not_fatal(self, recwarn):
        runner = fresh_runner()
        run_grid(
            runner, table1_cells((1,)), jobs=2, task_timeout=0.001
        )
        assert runner.stats.task_failures > 0
        assert any(
            "recomputed on demand" in str(w.message) for w in recwarn.list
        )
        # The table still builds: missing cells recompute serially.
        assert format_table1(build_table1(runner, thread_counts=(1,)))


class TestCliParity:
    ARGS = ["table1", "--inserts", str(INSERTS), "--threads", "1", "2"]

    def run_cli(self, capsys, *extra):
        assert main(self.ARGS + list(extra)) == 0
        return capsys.readouterr()

    def test_jobs4_byte_identical_to_serial(self, capsys, tmp_path):
        serial = self.run_cli(capsys, "--jobs", "1").out
        parallel = self.run_cli(
            capsys, "--jobs", "4", "--cache-dir", str(tmp_path / "c")
        ).out
        assert parallel == serial

    def test_warm_cache_rerun_identical_with_zero_retraces(
        self, capsys, tmp_path
    ):
        cache = str(tmp_path / "cache")
        cold = self.run_cli(capsys, "--cache-dir", cache, "--stats")
        warm = self.run_cli(capsys, "--cache-dir", cache, "--stats")
        assert warm.out == cold.out
        # --stats goes to stderr so stdout stays byte-comparable.
        assert "workloads: 6 traced" in cold.err
        assert "workloads: 0 traced" in warm.err
        assert "analyses:  0 run" in warm.err

    def test_warm_parallel_rerun_identical(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        cold = self.run_cli(capsys, "--jobs", "2", "--cache-dir", cache).out
        warm = self.run_cli(capsys, "--jobs", "2", "--cache-dir", cache).out
        assert warm == cold

    def test_figures_parallel_identical(self, capsys, tmp_path):
        out_serial = tmp_path / "serial"
        out_parallel = tmp_path / "parallel"
        args = ["figures", "--inserts", str(INSERTS)]
        assert main(args + ["--out", str(out_serial)]) == 0
        assert (
            main(
                args
                + [
                    "--out",
                    str(out_parallel),
                    "--jobs",
                    "2",
                    "--cache-dir",
                    str(tmp_path / "c"),
                ]
            )
            == 0
        )
        names = sorted(p.name for p in out_serial.iterdir())
        assert names == sorted(p.name for p in out_parallel.iterdir())
        for name in names:
            assert (out_parallel / name).read_bytes() == (
                out_serial / name
            ).read_bytes()
