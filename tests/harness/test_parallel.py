"""Tests for the parallel grid executor: parity with serial execution."""

import pytest

from repro.cli import main
from repro.harness import (
    DiskCache,
    ExperimentRunner,
    GridCell,
    build_table1,
    dedup_cells,
    figure_cells,
    format_table1,
    run_grid,
    table1_cells,
)

INSERTS = 6
THREADS = (1, 2)


def fresh_runner(cache_dir=None):
    return ExperimentRunner(
        inserts_per_thread=INSERTS,
        base_seed=4,
        cache=DiskCache(cache_dir) if cache_dir else None,
    )


class TestGrid:
    def test_table1_cells_cover_the_table(self):
        cells = table1_cells(THREADS)
        assert len(cells) == 2 * 2 * 4
        assert {c.design for c in cells} == {"cwl", "2lc"}

    def test_figure_cells_cover_figures_3_to_5(self):
        cells = figure_cells()
        models = {c.model for c in cells}
        assert models == {"strict", "epoch", "strand"}
        assert any(c.persist_granularity == 256 for c in cells)
        assert any(c.tracking_granularity == 256 for c in cells)

    def test_dedup_normalises_racing_insensitive_designs(self):
        cells = dedup_cells(
            [
                GridCell("2lc", 1, True, "epoch"),
                GridCell("2lc", 1, False, "epoch"),
                GridCell("cwl", 1, True, "epoch"),
            ]
        )
        assert len(cells) == 2
        assert all(
            not cell.racing for cell in cells if cell.design == "2lc"
        )


class TestParallelParity:
    @pytest.fixture(scope="class")
    def serial_table(self):
        runner = fresh_runner()
        run_grid(runner, table1_cells(THREADS), jobs=1)
        return format_table1(build_table1(runner, thread_counts=THREADS))

    def test_parallel_table_identical(self, serial_table):
        runner = fresh_runner()
        run_grid(runner, table1_cells(THREADS), jobs=2)
        table = format_table1(build_table1(runner, thread_counts=THREADS))
        assert table == serial_table

    def test_parallel_populates_runner_caches(self):
        runner = fresh_runner()
        run_grid(runner, table1_cells(THREADS), jobs=2)
        # Worker stats merge into the parent: same total work as serial.
        assert runner.stats.workload_runs == 6
        assert runner.stats.analysis_runs == 14
        # Building the table afterwards re-traces and re-analyzes nothing.
        build_table1(runner, thread_counts=THREADS)
        assert runner.stats.workload_runs == 6
        assert runner.stats.analysis_runs == 14

    def test_parallel_analysis_equals_serial(self):
        serial = fresh_runner()
        parallel = fresh_runner()
        cells = dedup_cells(table1_cells(THREADS))
        run_grid(serial, cells, jobs=1)
        run_grid(parallel, cells, jobs=2)
        for cell in cells:
            design, threads, racing = cell.variant
            assert parallel.analysis(
                design, threads, racing, cell.model, cell.analysis_config()
            ) == serial.analysis(
                design, threads, racing, cell.model, cell.analysis_config()
            )


class TestCliParity:
    ARGS = ["table1", "--inserts", str(INSERTS), "--threads", "1", "2"]

    def run_cli(self, capsys, *extra):
        assert main(self.ARGS + list(extra)) == 0
        return capsys.readouterr()

    def test_jobs4_byte_identical_to_serial(self, capsys, tmp_path):
        serial = self.run_cli(capsys, "--jobs", "1").out
        parallel = self.run_cli(
            capsys, "--jobs", "4", "--cache-dir", str(tmp_path / "c")
        ).out
        assert parallel == serial

    def test_warm_cache_rerun_identical_with_zero_retraces(
        self, capsys, tmp_path
    ):
        cache = str(tmp_path / "cache")
        cold = self.run_cli(capsys, "--cache-dir", cache, "--stats")
        warm = self.run_cli(capsys, "--cache-dir", cache, "--stats")
        assert warm.out == cold.out
        # --stats goes to stderr so stdout stays byte-comparable.
        assert "workloads: 6 traced" in cold.err
        assert "workloads: 0 traced" in warm.err
        assert "analyses:  0 run" in warm.err

    def test_warm_parallel_rerun_identical(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        cold = self.run_cli(capsys, "--jobs", "2", "--cache-dir", cache).out
        warm = self.run_cli(capsys, "--jobs", "2", "--cache-dir", cache).out
        assert warm == cold

    def test_figures_parallel_identical(self, capsys, tmp_path):
        out_serial = tmp_path / "serial"
        out_parallel = tmp_path / "parallel"
        args = ["figures", "--inserts", str(INSERTS)]
        assert main(args + ["--out", str(out_serial)]) == 0
        assert (
            main(
                args
                + [
                    "--out",
                    str(out_parallel),
                    "--jobs",
                    "2",
                    "--cache-dir",
                    str(tmp_path / "c"),
                ]
            )
            == 0
        )
        names = sorted(p.name for p in out_serial.iterdir())
        assert names == sorted(p.name for p in out_parallel.iterdir())
        for name in names:
            assert (out_parallel / name).read_bytes() == (
                out_serial / name
            ).read_bytes()
