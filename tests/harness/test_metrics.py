"""Tests for throughput metric arithmetic."""

import math

import pytest

from repro.errors import AnalysisError
from repro.harness import (
    ThroughputPoint,
    achievable_rate,
    breakeven_latency,
    normalized_throughput,
    persist_bound_rate,
)


class TestPersistBoundRate:
    def test_basic(self):
        # 100 ops, critical path 200, 500 ns persists: 1 us/op -> 1M op/s.
        assert persist_bound_rate(200, 100, 500e-9) == pytest.approx(1e6)

    def test_zero_critical_path_is_unbounded(self):
        assert math.isinf(persist_bound_rate(0, 100, 500e-9))

    def test_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            persist_bound_rate(10, 0, 500e-9)
        with pytest.raises(AnalysisError):
            persist_bound_rate(10, 100, 0)


class TestNormalizedAndAchievable:
    def test_normalized(self):
        assert normalized_throughput(2e6, 4e6) == pytest.approx(0.5)
        with pytest.raises(AnalysisError):
            normalized_throughput(1.0, 0.0)

    def test_achievable_is_min(self):
        assert achievable_rate(2e6, 4e6) == 2e6
        assert achievable_rate(5e6, 4e6) == 4e6


class TestBreakeven:
    def test_matches_definition(self):
        # At the breakeven latency, persist rate equals instruction rate.
        critical_path, operations, instr_rate = 1500, 100, 4e6
        latency = breakeven_latency(critical_path, operations, instr_rate)
        assert persist_bound_rate(
            critical_path, operations, latency
        ) == pytest.approx(instr_rate)

    def test_zero_critical_path(self):
        assert math.isinf(breakeven_latency(0, 100, 4e6))

    def test_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            breakeven_latency(10, 0, 4e6)


class TestThroughputPoint:
    def point(self, critical_path=1000, latency=500e-9):
        return ThroughputPoint(
            model="strict",
            persist_latency=latency,
            critical_path=critical_path,
            operations=100,
            instruction_rate=4e6,
        )

    def test_derived_quantities_consistent(self):
        point = self.point()
        assert point.critical_path_per_op == pytest.approx(10.0)
        assert point.persist_rate == pytest.approx(100 / (1000 * 500e-9))
        assert point.normalized == pytest.approx(point.persist_rate / 4e6)
        assert point.achievable == min(point.persist_rate, 4e6)

    def test_compute_bound_flag(self):
        assert self.point(critical_path=1).compute_bound
        assert not self.point(critical_path=100_000).compute_bound

    def test_breakeven_splits_regimes(self):
        point = self.point()
        below = ThroughputPoint(
            "strict", point.breakeven * 0.5, 1000, 100, 4e6
        )
        above = ThroughputPoint(
            "strict", point.breakeven * 2.0, 1000, 100, 4e6
        )
        assert below.compute_bound
        assert not above.compute_bound
