"""Tests for the instruction-rate cost model."""

import pytest

from repro.harness import InstructionCostModel
from repro.trace import EventKind, Trace, make_access, make_marker

MODEL = InstructionCostModel(cycles_per_event=10, clock_hz=1e9)
STEP = 10 / 1e9  # seconds per event


def access(seq, thread, addr, kind=EventKind.STORE, value=1):
    return make_access(seq, thread, kind, addr, 8, value, False)


class TestSerialTime:
    def test_serial_time(self):
        assert MODEL.serial_time(100) == pytest.approx(100 * STEP)

    def test_seconds_per_event(self):
        assert MODEL.seconds_per_event == pytest.approx(STEP)


class TestMakespan:
    def test_single_thread_is_serial(self):
        trace = Trace()
        for i in range(10):
            trace.append(access(i, 0, 0x1000 + 8 * i))
        assert MODEL.makespan(trace) == pytest.approx(10 * STEP)

    def test_independent_threads_overlap(self):
        trace = Trace()
        seq = 0
        for i in range(10):
            for thread in (0, 1):
                trace.append(access(seq, thread, 0x1000 + 8 * (thread * 100 + i)))
                seq += 1
        # Two independent 10-event threads: makespan = one thread's time.
        assert MODEL.makespan(trace) == pytest.approx(10 * STEP)

    def test_conflicting_stores_serialise(self):
        trace = Trace()
        for i in range(10):
            trace.append(access(i, i % 2, 0x1000))  # same word, all stores
        assert MODEL.makespan(trace) == pytest.approx(10 * STEP)

    def test_load_after_store_serialises(self):
        trace = Trace()
        trace.append(access(0, 0, 0x1000, EventKind.STORE))
        trace.append(access(1, 1, 0x1000, EventKind.LOAD))
        assert MODEL.makespan(trace) == pytest.approx(2 * STEP)

    def test_concurrent_loads_do_not_serialise(self):
        trace = Trace()
        trace.append(access(0, 0, 0x1000, EventKind.LOAD, 0))
        trace.append(access(1, 1, 0x1000, EventKind.LOAD, 0))
        assert MODEL.makespan(trace) == pytest.approx(STEP)

    def test_markers_cost_time_on_their_thread(self):
        trace = Trace()
        trace.append(make_marker(0, 0, EventKind.PERSIST_BARRIER))
        trace.append(make_marker(1, 0, EventKind.MARK, "x"))
        assert MODEL.makespan(trace) == pytest.approx(2 * STEP)


class TestInstructionRate:
    def test_rate_is_ops_over_makespan(self):
        trace = Trace()
        for i in range(100):
            trace.append(access(i, 0, 0x1000 + 8 * (i % 50)))
        rate = MODEL.instruction_rate(trace, 10)
        assert rate == pytest.approx(10 / (100 * STEP))

    def test_rejects_zero_operations(self):
        trace = Trace()
        trace.append(access(0, 0, 0x1000))
        with pytest.raises(ValueError):
            MODEL.instruction_rate(trace, 0)

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError):
            MODEL.instruction_rate(Trace(), 5)


class TestCalibration:
    def test_default_matches_paper_scale(self, cwl_1t):
        """A single-thread 100-byte CWL insert should cost roughly 250 ns
        (the paper's implied ~4M inserts/s native rate), within 2x."""
        from repro.harness import DEFAULT_COST_MODEL

        rate = DEFAULT_COST_MODEL.instruction_rate(
            cwl_1t.trace, cwl_1t.total_inserts
        )
        assert 2e6 < rate < 8e6

    def test_cwl_does_not_scale_with_threads(self, cwl_1t, cwl_4t):
        """CWL copies inside the lock: aggregate instruction rate should
        stay within ~2x of single-thread, not scale 4x."""
        from repro.harness import DEFAULT_COST_MODEL

        rate_1 = DEFAULT_COST_MODEL.instruction_rate(
            cwl_1t.trace, cwl_1t.total_inserts
        )
        rate_4 = DEFAULT_COST_MODEL.instruction_rate(
            cwl_4t.trace, cwl_4t.total_inserts
        )
        assert rate_4 < 2.5 * rate_1

    def test_tlc_scales_better_than_cwl(self, cwl_4t, tlc_4t):
        """2LC copies outside any lock: more of its work overlaps, so its
        serial-time to makespan ratio (parallel speedup) must beat CWL's."""
        from repro.harness import DEFAULT_COST_MODEL

        def speedup(workload):
            serial = DEFAULT_COST_MODEL.serial_time(len(workload.trace))
            return serial / DEFAULT_COST_MODEL.makespan(workload.trace)

        assert speedup(tlc_4t) > speedup(cwl_4t)
