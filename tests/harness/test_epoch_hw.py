"""Tests for the buffered epoch-persistency hardware model."""

import pytest

from repro.core import analyze
from repro.errors import AnalysisError
from repro.harness import InstructionCostModel, PAPER_PERSIST_LATENCY
from repro.hardware import EpochHardwareConfig, simulate_epoch_hardware

from tests.core.helpers import B, L, P, S, V, build

MODEL = InstructionCostModel(cycles_per_event=10, clock_hz=1e9)
STEP = 10 / 1e9
LATENCY = 1e-6


def config(**kwargs):
    kwargs.setdefault("persist_latency", LATENCY)
    kwargs.setdefault("cost_model", MODEL)
    return EpochHardwareConfig(**kwargs)


class TestBasics:
    def test_volatile_trace_runs_at_execution_speed(self):
        trace = build([(0, S, V, 1), (0, L, V, 1), (0, S, V + 8, 2)])
        result = simulate_epoch_hardware(trace, config())
        assert result.total_time == pytest.approx(result.execution_time)
        assert result.stall_time == 0.0
        assert result.persists == 0

    def test_single_epoch_drains_one_wave(self):
        trace = build([(0, S, P, 1), (0, S, P + 64, 2), (0, B)])
        result = simulate_epoch_hardware(trace, config())
        # Two concurrent persists: one wave, draining from the close (the
        # barrier's own execution step overlaps the drain).
        assert result.epochs_drained == 1
        assert result.total_time == pytest.approx(2 * STEP + LATENCY)

    def test_same_block_chain_adds_waves(self):
        trace = build([(0, S, P, 1), (0, S, P, 2), (0, S, P, 3), (0, B)])
        result = simulate_epoch_hardware(trace, config())
        assert result.total_time == pytest.approx(3 * STEP + 3 * LATENCY)

    def test_epochs_drain_serially_per_thread(self):
        trace = build(
            [(0, S, P, 1), (0, B), (0, S, P + 64, 2), (0, B)]
        )
        result = simulate_epoch_hardware(
            trace, config(buffer_epochs=8)
        )
        # Two epochs, one wave each, drains serialised: total ends at the
        # second drain, which starts after the first completes.
        assert result.total_time >= 2 * LATENCY
        assert result.buffer_stall_time == 0.0

    def test_config_validation(self):
        with pytest.raises(AnalysisError):
            EpochHardwareConfig(persist_latency=0).validate()
        with pytest.raises(AnalysisError):
            EpochHardwareConfig(buffer_epochs=0).validate()


class TestBackPressure:
    def test_shallow_buffer_stalls(self):
        events = []
        for i in range(12):
            events.append((0, S, P + 64 * i, i + 1))
            events.append((0, B))
        trace = build(events)
        shallow = simulate_epoch_hardware(trace, config(buffer_epochs=1))
        deep = simulate_epoch_hardware(trace, config(buffer_epochs=64))
        assert shallow.buffer_stall_time > 0.0
        assert deep.buffer_stall_time == 0.0
        assert shallow.total_time >= deep.total_time

    def test_stall_time_monotone_in_depth(self):
        events = []
        for i in range(16):
            events.append((0, S, P + 64 * i, i + 1))
            events.append((0, B))
        trace = build(events)
        stalls = [
            simulate_epoch_hardware(
                trace, config(buffer_epochs=depth)
            ).buffer_stall_time
            for depth in (1, 2, 4, 16)
        ]
        assert all(a >= b for a, b in zip(stalls, stalls[1:]))


class TestConflictFlush:
    def test_cross_thread_access_waits_for_owner_epoch(self):
        # t0 persists the block; t1 reads it before the epoch drained.
        trace = build(
            [
                (0, S, P, 1),
                (1, L, P, 1),
                (1, S, P + 512, 2),
            ]
        )
        result = simulate_epoch_hardware(trace, config())
        assert result.conflict_stall_time > 0.0
        # t1's read stalled for the flush: total includes the drain.
        assert result.total_time > LATENCY

    def test_own_epoch_access_does_not_flush(self):
        trace = build([(0, S, P, 1), (0, L, P, 1)])
        result = simulate_epoch_hardware(trace, config())
        assert result.conflict_stall_time == 0.0

    def test_drained_owner_does_not_stall(self):
        # Barrier closes and (eventually) drains t0's epoch; if t1's
        # access comes long after, the owner drained in background.
        trace = build(
            [
                (0, S, P, 1),
                (0, B),
            ]
            + [(1, S, V + 8 * i, i + 1) for i in range(200)]
            + [(1, L, P, 1)]
        )
        result = simulate_epoch_hardware(trace, config())
        assert result.conflict_stall_time == 0.0


class TestAgainstSemanticBound:
    def test_hardware_never_beats_the_constraint_bound(self, cwl_1t):
        semantic = analyze(cwl_1t.trace, "epoch")
        bound = semantic.critical_path * PAPER_PERSIST_LATENCY
        result = simulate_epoch_hardware(
            cwl_1t.trace,
            EpochHardwareConfig(persist_latency=PAPER_PERSIST_LATENCY),
            constraint_bound=bound,
        )
        assert result.total_time >= bound * 0.999
        assert result.total_time >= result.execution_time * 0.999

    def test_deeper_buffers_never_hurt(self, cwl_4t):
        times = [
            simulate_epoch_hardware(
                cwl_4t.trace,
                EpochHardwareConfig(
                    persist_latency=PAPER_PERSIST_LATENCY,
                    buffer_epochs=depth,
                ),
            ).total_time
            for depth in (1, 4, 32)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(times, times[1:]))
