"""Cross-validation: the scalar and graph engines must agree.

With coalescing disabled the two dependency domains make identical
decisions, so the scalar critical path must equal the longest path of the
explicit DAG — on hand traces, real workloads, and hypothesis-generated
random programs.  With coalescing enabled, the scalar (level-based) test
is strictly more permissive than exact ancestry, which bounds the
relationship instead of making it an equality.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnalysisConfig, analyze, analyze_graph

from tests.core.helpers import B, L, NS, P, R, S, V, build

MODELS = ("strict", "epoch", "bpfs", "strand")
NO_COALESCE = AnalysisConfig(coalescing=False)


def assert_domains_agree(trace, model):
    scalar = analyze(trace, model, AnalysisConfig(coalescing=False))
    graph = analyze_graph(trace, model)
    assert scalar.critical_path == graph.graph.critical_path(), model
    assert scalar.persist_count == graph.persist_count, model


# Random-program strategy: a handful of threads issuing accesses over a
# small pool of persistent and volatile words, with barriers and strands.
_op = st.tuples(
    st.integers(0, 2),  # thread
    st.sampled_from([S, S, S, L, R, B, NS]),  # bias toward stores
    st.integers(0, 5),  # address slot
    st.booleans(),  # persistent?
)


def trace_from_script(script):
    events = []
    for thread, kind, slot, persistent in script:
        if kind in (S, L, R):
            base = P if persistent else V
            events.append((thread, kind, base + 8 * slot, 1))
        else:
            events.append((thread, kind))
    return build(events)


class TestAgreementOnHandTraces:
    @pytest.mark.parametrize("model", MODELS)
    def test_chain(self, model):
        trace = build(
            [(0, S, P, 1), (0, B), (0, S, P + 64, 2), (0, B), (0, S, P, 3)]
        )
        assert_domains_agree(trace, model)

    @pytest.mark.parametrize("model", MODELS)
    def test_cross_thread(self, model):
        trace = build(
            [
                (0, S, P, 1),
                (0, B),
                (0, S, V, 1),
                (1, L, V, 1),
                (1, B),
                (1, S, P + 64, 2),
                (1, NS),
                (1, S, P, 5),
            ]
        )
        assert_domains_agree(trace, model)


class TestAgreementOnTsoTraces:
    @pytest.mark.parametrize("model", MODELS)
    def test_domains_agree_on_tso_memory_order(self, model):
        """The engines consume memory-order traces; TSO machine output is
        one, so cross-validation must hold there too."""
        from repro.queue import run_insert_workload

        workload = run_insert_workload(
            design="cwl",
            threads=2,
            inserts_per_thread=8,
            racing=True,
            seed=41,
            consistency="tso",
        )
        assert_domains_agree(workload.trace, model)


class TestAgreementOnWorkloads:
    @pytest.mark.parametrize("model", MODELS)
    def test_cwl_single_thread(self, cwl_1t, model):
        assert_domains_agree(cwl_1t.trace, model)

    @pytest.mark.parametrize("model", MODELS)
    def test_cwl_multithread(self, cwl_4t, model):
        assert_domains_agree(cwl_4t.trace, model)

    @pytest.mark.parametrize("model", MODELS)
    def test_cwl_racing(self, cwl_4t_racing, model):
        assert_domains_agree(cwl_4t_racing.trace, model)

    @pytest.mark.parametrize("model", MODELS)
    def test_tlc_multithread(self, tlc_4t, model):
        assert_domains_agree(tlc_4t.trace, model)


@settings(max_examples=120, deadline=None)
@given(st.lists(_op, max_size=60))
def test_domains_agree_on_random_programs(script):
    trace = trace_from_script(script)
    for model in MODELS:
        assert_domains_agree(trace, model)


@settings(max_examples=80, deadline=None)
@given(st.lists(_op, max_size=60))
def test_coalescing_bounds_on_random_programs(script):
    """Coalescing only reduces persist counts and never lengthens the
    critical path; the scalar test coalesces at least as much as exact
    ancestry."""
    trace = trace_from_script(script)
    for model in MODELS:
        loose = analyze(trace, model)
        tight = analyze(trace, model, AnalysisConfig(coalescing=False))
        assert loose.persist_count <= tight.persist_count
        assert loose.critical_path <= tight.critical_path
        exact = analyze_graph(trace, model, AnalysisConfig(coalescing=True))
        assert loose.persist_count <= exact.persist_count


@settings(max_examples=80, deadline=None)
@given(st.lists(_op, max_size=60))
def test_strong_persist_atomicity_on_random_programs(script):
    """Persists to the same word are totally ordered in every model's DAG
    (the recovery observer's persist atomicity, Section 4.2)."""
    trace = trace_from_script(script)
    for model in MODELS:
        graph = analyze_graph(trace, model).graph
        by_block = {}
        for node in graph.nodes:
            by_block.setdefault(node.addr // 8, []).append(node.pid)
        for pids in by_block.values():
            for earlier, later in zip(pids, pids[1:]):
                assert earlier in graph.ancestors(later)


@settings(max_examples=60, deadline=None)
@given(st.lists(_op, max_size=60))
def test_model_hierarchy_on_random_programs(script):
    """Relaxation only removes constraints: strict >= epoch >= strand,
    and epoch >= bpfs (BPFS tracks strictly fewer conflicts)."""
    trace = trace_from_script(script)
    results = {
        model: analyze(trace, model, NO_COALESCE).critical_path
        for model in MODELS
    }
    assert results["strict"] >= results["epoch"]
    assert results["epoch"] >= results["strand"]
    assert results["epoch"] >= results["bpfs"]
