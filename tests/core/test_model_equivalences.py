"""Model-equivalence theorems from the paper, checked on random programs.

Section 5.2: "The persist behavior of strict persistency can be achieved
by preceding and following all persists with a persist barrier" — i.e.,
epoch persistency over a barrier-saturated program equals strict
persistency over the original.

Section 5.3: strand persistency without any ``NEWSTRAND`` annotations
degenerates to epoch persistency (the strand hooks never fire).

Both hold exactly, for every program — hypothesis searches for
counterexamples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnalysisConfig, analyze
from repro.trace import EventKind, MemoryEvent, Trace

from tests.core.helpers import B, L, NS, P, R, S, V, build

_op = st.tuples(
    st.integers(0, 2),
    st.sampled_from([S, S, S, L, R, B]),
    st.integers(0, 5),
    st.booleans(),
)


def random_trace(script, with_strands=False):
    events = []
    for thread, kind, slot, persistent in script:
        if kind in (S, L, R):
            base = P if persistent else V
            events.append((thread, kind, base + 8 * slot, 1))
        else:
            events.append((thread, kind))
            if with_strands:
                events.append((thread, NS))
    return build(events)


def saturate_with_barriers(trace):
    """Insert a persist barrier around every access, preserving order."""
    saturated = Trace()
    seq = 0

    def emit(thread, kind, source=None):
        nonlocal seq
        if source is None:
            saturated.append(MemoryEvent(seq=seq, thread=thread, kind=kind))
        else:
            saturated.append(
                MemoryEvent(
                    seq=seq,
                    thread=source.thread,
                    kind=source.kind,
                    addr=source.addr,
                    size=source.size,
                    value=source.value,
                    persistent=source.persistent,
                    sync=source.sync,
                )
            )
        seq += 1

    for event in trace:
        if event.is_access:
            emit(event.thread, EventKind.PERSIST_BARRIER)
            emit(event.thread, event.kind, source=event)
            emit(event.thread, EventKind.PERSIST_BARRIER)
        elif event.kind is not EventKind.PERSIST_BARRIER:
            emit(event.thread, event.kind)
    return saturated


@settings(max_examples=120, deadline=None)
@given(st.lists(_op, max_size=50))
def test_barrier_saturated_epoch_equals_strict(script):
    trace = random_trace(script)
    saturated = saturate_with_barriers(trace)
    for coalescing in (True, False):
        config = AnalysisConfig(coalescing=coalescing)
        strict = analyze(trace, "strict", config)
        epoch = analyze(saturated, "epoch", config)
        assert strict.critical_path == epoch.critical_path
        assert strict.persist_count == epoch.persist_count


@settings(max_examples=120, deadline=None)
@given(st.lists(_op, max_size=50))
def test_strand_without_new_strand_equals_epoch(script):
    trace = random_trace(script, with_strands=False)
    for coalescing in (True, False):
        config = AnalysisConfig(coalescing=coalescing)
        epoch = analyze(trace, "epoch", config)
        strand = analyze(trace, "strand", config)
        assert epoch.critical_path == strand.critical_path
        assert epoch.coalesced == strand.coalesced


@settings(max_examples=80, deadline=None)
@given(st.lists(_op, max_size=50))
def test_new_strand_after_every_barrier_only_weakens(script):
    """Adding strand annotations never increases the critical path."""
    plain = random_trace(script, with_strands=False)
    stranded = random_trace(script, with_strands=True)
    plain_cp = analyze(plain, "strand").critical_path
    stranded_cp = analyze(stranded, "strand").critical_path
    assert stranded_cp <= plain_cp


@settings(max_examples=80, deadline=None)
@given(st.lists(_op, max_size=40))
def test_barriers_only_strengthen_epoch(script):
    """Saturating a program with barriers never shortens its epoch-model
    critical path (barriers only add constraints)."""
    trace = random_trace(script)
    saturated = saturate_with_barriers(trace)
    config = AnalysisConfig(coalescing=False)
    base = analyze(trace, "epoch", config).critical_path
    stronger = analyze(saturated, "epoch", config).critical_path
    assert stronger >= base
