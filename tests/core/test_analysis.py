"""Engine-level tests for the analysis driver."""

import pytest

from repro.core import (
    AnalysisConfig,
    EpochPersistency,
    GraphDomain,
    analyze,
    analyze_graph,
)
from repro.errors import AnalysisError

from tests.core.helpers import B, L, NS, P, S, V, build


class TestConfig:
    def test_default_config_valid(self):
        AnalysisConfig().validate()

    @pytest.mark.parametrize("granularity", [0, 4, 12, -8])
    def test_bad_persist_granularity(self, granularity):
        with pytest.raises(AnalysisError):
            AnalysisConfig(persist_granularity=granularity).validate()

    @pytest.mark.parametrize("granularity", [0, 4, 24])
    def test_bad_tracking_granularity(self, granularity):
        with pytest.raises(AnalysisError):
            AnalysisConfig(tracking_granularity=granularity).validate()

    def test_analyze_validates_config(self):
        trace = build([(0, S, P, 1)])
        with pytest.raises(AnalysisError):
            analyze(trace, "epoch", AnalysisConfig(persist_granularity=3))


class TestResults:
    def test_counts(self):
        trace = build(
            [(0, S, P, 1), (0, B), (0, S, V, 2), (0, NS), (0, L, P, 1)]
        )
        result = analyze(trace, "epoch")
        assert result.persist_stores == 1
        assert result.persist_count == 1
        assert result.barriers == 1
        assert result.strands == 1
        assert result.events == len(trace)
        assert result.model == "epoch"

    def test_volatile_only_trace_has_no_persists(self):
        trace = build([(0, S, V, 1), (0, L, V, 1), (0, S, V + 8, 2)])
        result = analyze(trace, "strict")
        assert result.persist_stores == 0
        assert result.critical_path == 0

    def test_critical_path_per(self):
        trace = build([(0, S, P, 1), (0, S, P + 64, 2)])
        result = analyze(trace, "strict")
        assert result.critical_path_per(2) == 1.0
        with pytest.raises(AnalysisError):
            result.critical_path_per(0)

    def test_coalesce_fraction(self):
        trace = build([(0, S, P, 1), (0, S, P, 2)])
        result = analyze(trace, "epoch")
        assert result.coalesced == 1
        assert result.coalesce_fraction == 0.5
        empty = analyze(build([(0, L, V, 0)]), "epoch")
        assert empty.coalesce_fraction == 0.0

    def test_graph_field_only_for_graph_domain(self):
        trace = build([(0, S, P, 1)])
        assert analyze(trace, "epoch").graph is None
        assert analyze_graph(trace, "epoch").graph is not None


class TestDriving:
    def test_accepts_model_instance(self):
        trace = build([(0, S, P, 1), (0, S, P + 64, 2)])
        model = EpochPersistency()
        assert analyze(trace, model).critical_path == 1

    def test_model_instance_reusable_across_analyses(self):
        trace = build([(0, S, P, 1), (0, B), (0, S, P + 64, 2)])
        model = EpochPersistency()
        first = analyze(trace, model)
        second = analyze(trace, model)
        assert first.critical_path == second.critical_path == 2

    def test_repeated_analysis_is_deterministic(self, cwl_1t):
        results = [
            analyze(cwl_1t.trace, name).critical_path
            for name in ("strict", "epoch", "strand")
            for _ in (0, 1)
        ]
        assert results[0::2] == results[1::2]

    def test_graph_domain_passed_explicitly(self):
        trace = build([(0, S, P, 1), (0, B), (0, S, P + 64, 2)])
        domain = GraphDomain()
        result = analyze(
            trace, "epoch", AnalysisConfig(coalescing=False), domain=domain
        )
        assert result.graph is domain
        assert len(domain.nodes) == 2

    def test_analyze_graph_defaults_to_no_coalescing(self):
        trace = build([(0, S, P, 1), (0, S, P, 2)])
        result = analyze_graph(trace, "epoch")
        assert result.persist_count == 2
        assert result.coalesced == 0


class TestExactGraphCoalescing:
    def test_graph_coalescing_uses_ancestry_not_levels(self):
        """Level-based coalescing admits merges exact ancestry rejects.

        Persists: A (level 1), C (level 2, depends on A), then A' to A's
        block with deps {C}... instead build: X (level 1) on thread 1,
        unrelated; A (level 1); B after barrier deps {A} (level 2);
        then store to X's block with deps {B}: scalar sees deps level
        2 > pending level 1 -> no coalesce either.  Use deps level 1:
        store to X's block with deps {A} (level 1 = pending level 1):
        scalar coalesces, but A is not an ancestor of X, so the graph
        refuses.
        """
        trace = build(
            [
                (1, S, P + 512, 9),  # X: level 1 pending at its block
                (0, S, P, 1),        # A: level 1
                (0, B),
                (0, S, P + 512, 7),  # deps {A}; pending X level 1
            ]
        )
        scalar = analyze(trace, "epoch")
        assert scalar.coalesced == 1  # level test: 1 <= 1
        exact = analyze(
            trace,
            "epoch",
            AnalysisConfig(coalescing=True),
            domain=GraphDomain(),
        )
        assert exact.coalesced == 0  # A is not an ancestor of X
        # The graph then orders the new persist after both X (SPA) and A.
        assert exact.graph.critical_path == exact.graph.critical_path
        assert exact.persist_count == 3
