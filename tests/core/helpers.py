"""Shared helpers for building hand-written traces in core tests."""

from repro.trace import EventKind, MemoryEvent, Trace

#: Persistent and volatile scratch bases (match the machine's layout).
P = 0x8000_0000
V = 0x1000_0000

S = EventKind.STORE
L = EventKind.LOAD
R = EventKind.RMW
B = EventKind.PERSIST_BARRIER
NS = EventKind.NEW_STRAND


def build(events):
    """Build a trace from a compact spec list.

    Each element is ``(thread, kind)`` for annotations or
    ``(thread, kind, addr, value[, sync])`` for 8-byte accesses; the
    persistent flag derives from the address.
    """
    trace = Trace()
    for seq, spec in enumerate(events):
        thread, kind = spec[0], spec[1]
        if kind in (S, L, R):
            addr, value = spec[2], spec[3]
            sync = spec[4] if len(spec) > 4 else False
            trace.append(
                MemoryEvent(
                    seq=seq,
                    thread=thread,
                    kind=kind,
                    addr=addr,
                    size=8,
                    value=value,
                    persistent=addr >= P,
                    sync=sync,
                )
            )
        else:
            trace.append(MemoryEvent(seq=seq, thread=thread, kind=kind))
    return trace
