"""Tests for the persist concurrency profile (level histogram)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnalysisConfig, analyze, analyze_graph

from tests.core.helpers import B, L, P, R, S, V, build
from tests.core.test_cross_validation import _op, trace_from_script

NO_COALESCE = AnalysisConfig(coalescing=False)


class TestHistogram:
    def test_chain_is_one_per_level(self):
        trace = build(
            [(0, S, P, 1), (0, B), (0, S, P + 64, 2), (0, B), (0, S, P + 128, 3)]
        )
        result = analyze(trace, "epoch")
        assert result.level_histogram == {1: 1, 2: 1, 3: 1}
        assert result.mean_concurrency == 1.0

    def test_concurrent_persists_stack_on_level_one(self):
        trace = build([(0, S, P + 64 * i, i + 1) for i in range(5)])
        result = analyze(trace, "epoch")
        assert result.level_histogram == {1: 5}
        assert result.mean_concurrency == 5.0

    def test_histogram_sums_to_persist_count(self, cwl_1t):
        for model in ("strict", "epoch", "strand"):
            result = analyze(cwl_1t.trace, model)
            assert sum(result.level_histogram.values()) == result.persist_count
            assert max(result.level_histogram) == result.critical_path

    def test_relaxation_widens_waves(self, cwl_4t_racing):
        """Relaxed models push persists into fewer, wider levels."""
        strict = analyze(cwl_4t_racing.trace, "strict").mean_concurrency
        epoch = analyze(cwl_4t_racing.trace, "epoch").mean_concurrency
        strand = analyze(cwl_4t_racing.trace, "strand").mean_concurrency
        assert strict < epoch < strand

    def test_empty_trace(self):
        result = analyze(build([(0, L, V, 0)]), "epoch")
        assert result.level_histogram == {}
        assert result.mean_concurrency == 0.0


@settings(max_examples=60, deadline=None)
@given(st.lists(_op, max_size=50))
def test_histograms_agree_between_domains(script):
    """With coalescing off, the scalar engine's level assignment matches
    the DAG's longest-chain levels node for node."""
    trace = trace_from_script(script)
    for model in ("strict", "epoch", "strand"):
        scalar = analyze(trace, model, NO_COALESCE)
        graph = analyze_graph(trace, model)
        assert scalar.level_histogram == graph.graph.level_histogram()
