"""Streaming-analyzer parity: chunked results must equal one-shot.

The streaming engine is only an optimisation — kind-code dispatch,
batched coalescing runs, touched-block flush joins, and incremental
DAG levels must be *invisible* in the results.  These tests drive
random traces through :class:`~repro.core.analysis.StreamingAnalyzer`
in columnar chunks of adversarial sizes and assert every observable
result field (and, on graph domains, the persist DAG itself) matches
the per-event ``analyze()`` reference, across all models and domains.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AnalysisConfig, StreamingAnalyzer, analyze
from repro.core.model import MODELS
from repro.errors import AnalysisError
from repro.trace import ColumnarTrace, EventKind, MemoryEvent, Trace

from tests.core.helpers import B, L, NS, P, R, S, V, build

DOMAINS = ("level", "graph", "bitset")

#: Every result field with observable analysis content.
FIELDS = (
    "critical_path",
    "persist_count",
    "persist_stores",
    "coalesced",
    "events",
    "barriers",
    "strands",
    "level_histogram",
    "block_writes",
)


def stream(trace, model, config, domain, chunk_events):
    """Analyze ``trace`` through the chunked streaming path."""
    columnar = ColumnarTrace.from_trace(trace, chunk_events=chunk_events)
    analyzer = StreamingAnalyzer(model, config, domain=domain)
    for chunk in columnar.chunks():
        analyzer.feed(chunk)
    return analyzer.finish()


def assert_results_equal(reference, streamed, context=""):
    for field in FIELDS:
        assert getattr(reference, field) == getattr(streamed, field), (
            f"{field} diverged {context}"
        )


def assert_dags_equal(reference, streamed, context=""):
    ref = [
        (node.thread, node.first_seq, frozenset(node.deps), tuple(node.writes))
        for node in reference.graph.nodes
    ]
    got = [
        (node.thread, node.first_seq, frozenset(node.deps), tuple(node.writes))
        for node in streamed.graph.nodes
    ]
    assert ref == got, f"persist DAG diverged {context}"


# -- random-trace strategy ---------------------------------------------------
#
# Slots are word-aligned over a few cache lines so the same trace mixes
# same-block coalescing runs, cross-block chains, and volatile traffic;
# occasional infos break run eligibility mid-stream.

_access = st.tuples(
    st.integers(0, 2),                        # thread
    st.sampled_from([S, S, S, S, L, R]),      # bias toward stores
    st.integers(0, 15),                       # word slot (2 lines at 64B)
    st.booleans(),                            # persistent?
    st.booleans(),                            # sync?
)
_annotation = st.tuples(
    st.integers(0, 2),
    st.sampled_from([B, NS, EventKind.SFENCE, EventKind.CLFLUSH]),
    st.integers(0, 15),
)
_script = st.lists(st.one_of(_access, _annotation), max_size=40)


def trace_from_script(script, info_every=0):
    events = []
    for index, spec in enumerate(script):
        if len(spec) == 5:
            thread, kind, slot, persistent, sync = spec
            base = P if persistent else V
            info = "x" if info_every and index % info_every == 0 else ""
            events.append(
                MemoryEvent(
                    seq=len(events),
                    thread=thread,
                    kind=kind,
                    addr=base + 8 * slot,
                    size=8,
                    value=index + 1,
                    persistent=persistent,
                    sync=sync,
                    info=info,
                )
            )
        else:
            thread, kind, slot = spec
            if kind is EventKind.CLFLUSH:
                events.append(
                    MemoryEvent(
                        seq=len(events),
                        thread=thread,
                        kind=kind,
                        addr=P + 8 * slot,
                        size=8,
                    )
                )
            else:
                events.append(
                    MemoryEvent(seq=len(events), thread=thread, kind=kind)
                )
    trace = Trace()
    trace.extend(events)
    return trace


class TestRandomParity:
    @settings(max_examples=40, deadline=None)
    @given(
        script=_script,
        chunk_events=st.sampled_from([1, 3, 17, 64]),
        coalescing=st.booleans(),
    )
    def test_all_models_all_domains(self, script, chunk_events, coalescing):
        trace = trace_from_script(script, info_every=7)
        config = AnalysisConfig(coalescing=coalescing)
        for model in MODELS:
            for domain in DOMAINS:
                reference = analyze(trace, model, config, domain=domain)
                streamed = stream(trace, model, config, domain, chunk_events)
                context = f"({model}/{domain}/chunk={chunk_events})"
                assert_results_equal(reference, streamed, context)
                if domain == "graph":
                    assert_dags_equal(reference, streamed, context)

    @settings(max_examples=25, deadline=None)
    @given(
        script=_script,
        persist_granularity=st.sampled_from([8, 64]),
        tracking_granularity=st.sampled_from([8, 64]),
    )
    def test_coarse_granularities(
        self, script, persist_granularity, tracking_granularity
    ):
        """Coarse blocks maximise run batching; results must not move."""
        trace = trace_from_script(script)
        config = AnalysisConfig(
            persist_granularity=persist_granularity,
            tracking_granularity=tracking_granularity,
        )
        for model in ("epoch", "strand", "px86"):
            for domain in ("level", "bitset"):
                reference = analyze(trace, model, config, domain=domain)
                streamed = stream(trace, model, config, domain, 13)
                assert_results_equal(
                    reference,
                    streamed,
                    f"({model}/{domain}/pg={persist_granularity}"
                    f"/tg={tracking_granularity})",
                )


class TestRunBatching:
    """Deterministic shapes aimed at the batched-run fast path."""

    def _run_trace(self, run_length, threads=1):
        events = []
        for thread in range(threads):
            for index in range(run_length):
                events.append((thread, S, P + 8 * (index % 8), index + 1))
        return build(events)

    @pytest.mark.parametrize("model", sorted(MODELS))
    def test_long_run_batches_to_one_persist(self, model):
        """64 same-line stores at line granularity: one persist."""
        trace = self._run_trace(64)
        config = AnalysisConfig(
            persist_granularity=64, tracking_granularity=64
        )
        reference = analyze(trace, model, config)
        for chunk_events in (5, 64, 1000):
            streamed = stream(trace, model, config, "level", chunk_events)
            assert_results_equal(reference, streamed, f"({model})")
        assert reference.persist_count == 1
        assert reference.coalesced == 63

    def test_run_straddling_chunk_boundary(self):
        """A run split across chunks re-joins with identical counters."""
        trace = self._run_trace(40, threads=2)
        config = AnalysisConfig(
            persist_granularity=64, tracking_granularity=64
        )
        reference = analyze(trace, "epoch", config)
        for chunk_events in (1, 7, 39, 40):
            streamed = stream(trace, "epoch", config, "level", chunk_events)
            assert_results_equal(reference, streamed, f"chunk={chunk_events}")

    def test_info_breaks_run_eligibility(self):
        """An annotated store mid-run must fall off the fast path."""
        events = [(0, S, P, index + 1) for index in range(10)]
        trace = build(events)
        annotated = Trace()
        for event in trace:
            info = "rmw-fail" if event.seq == 5 else ""
            annotated.append(
                MemoryEvent(
                    seq=event.seq,
                    thread=event.thread,
                    kind=event.kind,
                    addr=event.addr,
                    size=event.size,
                    value=event.value,
                    persistent=event.persistent,
                    info=info,
                )
            )
        config = AnalysisConfig(persist_granularity=64, tracking_granularity=64)
        for model in ("epoch", "bpfs"):
            reference = analyze(annotated, model, config)
            streamed = stream(annotated, model, config, "level", 4)
            assert_results_equal(reference, streamed, model)


class TestFlushTouchedBlocks:
    def test_wide_flush_range_joins_only_touched_blocks(self):
        """A flush spanning a huge sparse range equals the dense walk."""
        events = [
            (0, S, P, 1),
            (0, S, P + 4096, 2),
            (0, EventKind.SFENCE),
        ]
        trace = build(events)
        flushed = Trace()
        for event in trace:
            flushed.append(event)
        flushed.append(
            MemoryEvent(
                seq=len(trace),
                thread=0,
                kind=EventKind.CLWB,
                addr=P,
                size=8,
            )
        )
        flushed.append(
            MemoryEvent(
                seq=len(trace) + 1, thread=0, kind=EventKind.SFENCE
            )
        )
        for model in ("px86", "dpox86"):
            reference = analyze(flushed, model)
            streamed = stream(flushed, model, None, "level", 2)
            assert_results_equal(reference, streamed, model)


class TestStreamingApi:
    def test_feed_after_finish_rejected(self):
        analyzer = StreamingAnalyzer("epoch")
        analyzer.finish()
        with pytest.raises(AnalysisError):
            analyzer.feed(build([(0, S, P, 1)]))

    def test_events_fed_counts_across_chunks(self):
        trace = build([(0, S, P, 1), (0, B), (0, S, P + 64, 2)])
        columnar = ColumnarTrace.from_trace(trace, chunk_events=2)
        analyzer = StreamingAnalyzer("epoch")
        for chunk in columnar.chunks():
            analyzer.feed(chunk)
        assert analyzer.events_fed == 3
        assert analyzer.finish().events == 3

    def test_feed_accepts_plain_event_iterables(self):
        trace = build([(0, S, P, 1), (0, S, P + 8, 2)])
        chunked = StreamingAnalyzer("strict")
        chunked.feed(ColumnarTrace.from_trace(trace))
        scalar = StreamingAnalyzer("strict")
        scalar.feed(iter(trace))
        assert_results_equal(chunked.finish(), scalar.finish())
