"""Semantics tests for the persistency models (paper Sections 4-5).

Every test encodes one ordering rule from the paper as a tiny hand-built
SC trace and asserts the critical path each model assigns.
"""

import pytest

from repro.core import AnalysisConfig, analyze, make_model
from repro.core.model import MODELS

from tests.core.helpers import B, L, NS, P, R, S, V, build

NO_COALESCE = AnalysisConfig(coalescing=False)


def cp(trace, model, config=None):
    return analyze(trace, model, config).critical_path


class TestStrict:
    def test_program_order_serialises_persists(self):
        trace = build([(0, S, P, 1), (0, S, P + 64, 2), (0, S, P + 128, 3)])
        assert cp(trace, "strict") == 3

    def test_loads_order_persists_transitively(self):
        # Persist A; load x; other thread stores x after observing...
        # here: t0 persist then volatile store; t1 load sees it, persists.
        trace = build(
            [(0, S, P, 1), (0, S, V, 1), (1, L, V, 1), (1, S, P + 64, 2)]
        )
        assert cp(trace, "strict") == 2

    def test_unordered_cross_thread_persists_are_concurrent(self):
        # "persists from different threads that are unordered by
        # happens-before ... are concurrent" (Section 5.1).
        trace = build([(0, S, P, 1), (1, S, P + 64, 2)])
        assert cp(trace, "strict") == 1

    def test_ignores_barriers_and_strands(self):
        plain = build([(0, S, P, 1), (0, S, P + 64, 2)])
        annotated = build(
            [(0, S, P, 1), (0, B), (0, NS), (0, S, P + 64, 2)]
        )
        assert cp(plain, "strict") == cp(annotated, "strict") == 2

    def test_load_before_store_conflict_ordered(self):
        # t0 persists A then loads x; t1 stores x then persists B.
        # The load-before-store conflict orders A before B under SC.
        trace = build(
            [(0, S, P, 1), (0, L, V, 0), (1, S, V, 1), (1, S, P + 64, 2)]
        )
        assert cp(trace, "strict") == 2


class TestEpoch:
    def test_same_epoch_persists_concurrent(self):
        trace = build([(0, S, P, 1), (0, S, P + 64, 2), (0, S, P + 128, 3)])
        assert cp(trace, "epoch") == 1

    def test_barrier_orders_epochs(self):
        trace = build(
            [(0, S, P, 1), (0, B), (0, S, P + 64, 2), (0, B), (0, S, P + 128, 3)]
        )
        assert cp(trace, "epoch") == 3

    def test_barrier_orders_across_accesses_not_just_persists(self):
        # Rule (1): any two accesses separated by a barrier are ordered.
        # A < load(x) by barrier; load < store(x) by conflict;
        # store < B by t1's barrier: A < B.
        trace = build(
            [
                (0, S, P, 1),
                (0, B),
                (0, L, V, 0),
                (1, S, V, 1),
                (1, B),
                (1, S, P + 64, 2),
            ]
        )
        assert cp(trace, "epoch") == 2

    def test_volatile_conflicts_propagate(self):
        # Message passing through a volatile flag orders persists when
        # both sides use barriers (Section 5.2 rule 2 + rule 1).
        trace = build(
            [
                (0, S, P, 1),
                (0, B),
                (0, S, V, 1),
                (1, L, V, 1),
                (1, B),
                (1, S, P + 64, 2),
            ]
        )
        assert cp(trace, "epoch") == 2

    def test_racing_epochs_are_unordered(self):
        # Same message passing but with no barrier on the writer side:
        # a persist-epoch race; persists to different addresses stay
        # concurrent even though SC orders the underlying stores.
        trace = build(
            [
                (0, S, P, 1),
                (0, S, V, 1),
                (1, L, V, 1),
                (1, S, P + 64, 2),
            ]
        )
        assert cp(trace, "epoch") == 1

    def test_same_address_ordered_even_in_racing_epochs(self):
        # "two persists to the same address are always ordered even if
        # they occur in racing epochs" (strong persist atomicity).
        trace = build([(0, S, P, 1), (1, S, P, 2)])
        assert cp(trace, "epoch", NO_COALESCE) == 2

    def test_synchronization_through_persistent_memory(self):
        # Section 5.2: atomic RMW to a persistent address provides
        # well-defined cross-thread persist ordering via strong persist
        # atomicity, even without barriers around it on the reader side.
        flag = P + 1024
        trace = build(
            [
                (0, S, P, 1),       # data persist
                (0, B),
                (0, R, flag, 1),    # persistent RMW publish
                (1, R, flag, 2),    # persistent RMW observe (SPA-ordered)
                (1, B),
                (1, S, P + 64, 2),  # dependent persist
            ]
        )
        assert cp(trace, "epoch", NO_COALESCE) == 4

    def test_new_strand_is_ignored(self):
        with_strand = build(
            [(0, S, P, 1), (0, B), (0, NS), (0, S, P + 64, 2)]
        )
        assert cp(with_strand, "epoch") == 2


class TestBpfs:
    def test_volatile_conflicts_not_tracked(self):
        trace = build(
            [
                (0, S, P, 1),
                (0, B),
                (0, S, V, 1),
                (1, L, V, 1),
                (1, B),
                (1, S, P + 64, 2),
            ]
        )
        assert cp(trace, "epoch") == 2
        assert cp(trace, "bpfs") == 1

    def test_load_before_store_conflict_missed(self):
        # The paper: BPFS's last-persisting-thread tags cannot detect a
        # conflict whose first access is a load — TSO-style detection.
        # Chain under epoch: A < load (barrier), load < store P+512
        # (load-before-store conflict), store P+512 < B (barrier), giving
        # three links; BPFS misses the middle conflict and sees only the
        # flag persist + B chain of two.
        trace = build(
            [
                (0, S, P, 1),
                (0, B),
                (0, L, P + 512, 0),
                (1, S, P + 512, 1),
                (1, B),
                (1, S, P + 64, 2),
            ]
        )
        assert cp(trace, "epoch", NO_COALESCE) == 3
        assert cp(trace, "bpfs", NO_COALESCE) == 2

    def test_store_store_conflict_still_detected(self):
        # Store-store conflicts to the persistent space are detected by
        # both models: A < flag-store (barrier), flag < flag' (conflict
        # and strong persist atomicity), flag' < B (barrier) — four
        # persists in one chain.  Missing the conflict would leave two.
        trace = build(
            [
                (0, S, P, 1),
                (0, B),
                (0, S, P + 512, 7),
                (1, S, P + 512, 8),
                (1, B),
                (1, S, P + 64, 2),
            ]
        )
        assert cp(trace, "bpfs", NO_COALESCE) == 4
        assert cp(trace, "epoch", NO_COALESCE) == 4


class TestStrand:
    def test_new_strand_clears_dependences(self):
        trace = build(
            [(0, S, P, 1), (0, B), (0, NS), (0, S, P + 64, 2)]
        )
        assert cp(trace, "strand") == 1

    def test_barriers_order_within_strand(self):
        trace = build(
            [(0, NS), (0, S, P, 1), (0, B), (0, S, P + 64, 2)]
        )
        assert cp(trace, "strand") == 2

    def test_strand_ordering_via_read_then_barrier(self):
        # Section 5.3: "a persist strand begins by reading persisted
        # memory locations after which new persists must be ordered",
        # then a persist barrier enforces the dependence.
        trace = build(
            [
                (0, S, P, 1),       # strand 1: persist A
                (0, NS),            # strand 2
                (0, L, P, 1),       # read A (strong persist atomicity edge)
                (0, B),
                (0, S, P + 64, 2),  # must be ordered after A
            ]
        )
        assert cp(trace, "strand") == 2

    def test_strands_without_reads_are_concurrent(self):
        trace = build(
            [
                (0, S, P, 1),
                (0, B),
                (0, NS),
                (0, S, P + 64, 2),
                (0, B),
                (0, NS),
                (0, S, P + 128, 3),
            ]
        )
        assert cp(trace, "strand") == 1

    def test_same_address_across_strands_ordered(self):
        trace = build([(0, S, P, 1), (0, NS), (0, S, P, 2)])
        assert cp(trace, "strand", NO_COALESCE) == 2


class TestRegistry:
    def test_all_models_constructible(self):
        for name in MODELS:
            assert make_model(name).name == name

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            make_model("release_persistency")

    def test_models_are_fresh_instances(self):
        assert make_model("epoch") is not make_model("epoch")
