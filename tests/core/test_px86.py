"""Analysis-level semantics of the Px86 and DPOx86 models.

Pins the ordering table from ``docs/models.md``: which flush/fence
shapes order a pair of persists under each model, including the two
discriminating rows — ``clflushopt`` without a committing fence (px86
allows reordering, dpox86 does not) and a bare paper ``PERSISTBARRIER``
(epoch orders, the x86 family does not).  Runs under both the SC and
the TSO machine so buffered flushes/fences are exercised through the
store buffer, not just at execute time.
"""

import pytest

from repro.core import MODELS
from repro.core.analysis import analyze, analyze_graph
from repro.sim import Machine
from repro.trace import validate

from tests.sim.test_tso import DrainLastScheduler


def run_single(body_factory, consistency="sc"):
    """Run a one-thread program; returns (trace, cell addresses)."""
    machine = Machine(
        scheduler=DrainLastScheduler(), consistency=consistency
    )
    x = machine.persistent_heap.malloc(64)
    y = machine.persistent_heap.malloc(64)
    z = machine.persistent_heap.malloc(64)
    machine.spawn(body_factory(x, y, z))
    trace = machine.run()
    validate(trace)
    return trace, (x, y, z)


def critical_path(trace, model):
    return analyze(trace, model, domain="bitset").critical_path


def ordered(trace, model, addrs, first, second):
    """True when persist(first) is an ancestor of persist(second)."""
    graph = analyze_graph(trace, model).graph
    by_addr = {}
    for pid, node in enumerate(graph.nodes):
        by_addr.setdefault(node.addr, pid)
    left, right = by_addr[addrs[first]], by_addr[addrs[second]]
    return left in graph.ancestors(right)


# Each row: (name, ops between `St x` and `St y`, px86, dpox86, epoch).
# `ops` is a list of methods invoked on the context between the stores.
ORDERING_TABLE = [
    ("none", [], False, False, False),
    ("clflush", [("clflush", "x")], True, True, False),
    ("clflushopt", [("clflushopt", "x")], False, True, False),
    (
        "clflushopt-sfence",
        [("clflushopt", "x"), ("sfence", None)],
        True,
        True,
        False,
    ),
    ("clwb-sfence", [("clwb", "x"), ("sfence", None)], True, True, False),
    (
        "clflushopt-mfence",
        [("clflushopt", "x"), ("mfence", None)],
        True,
        True,
        False,
    ),
    ("sfence-only", [("sfence", None)], False, False, False),
    ("barrier", [("barrier", None)], False, False, True),
]


def _apply(ctx, op, addrs):
    kind, loc = op
    addr = {"x": addrs[0], "y": addrs[1], "z": addrs[2]}.get(loc)
    if kind == "clflush":
        yield from ctx.clflush(addr)
    elif kind == "clflushopt":
        yield from ctx.clflushopt(addr)
    elif kind == "clwb":
        yield from ctx.clwb(addr)
    elif kind == "sfence":
        yield from ctx.sfence()
    elif kind == "mfence":
        yield from ctx.fence()
    elif kind == "barrier":
        yield from ctx.persist_barrier()
    else:  # pragma: no cover
        raise AssertionError(kind)


@pytest.mark.parametrize("consistency", ["sc", "tso"])
@pytest.mark.parametrize(
    "name, middle, px86_ordered, dpox86_ordered, epoch_ordered",
    ORDERING_TABLE,
    ids=[row[0] for row in ORDERING_TABLE],
)
def test_ordering_table(
    consistency, name, middle, px86_ordered, dpox86_ordered, epoch_ordered
):
    def factory(x, y, z):
        def body(ctx):
            yield from ctx.store(x, 1)
            for op in middle:
                yield from _apply(ctx, op, (x, y, z))
            yield from ctx.store(y, 1)

        return body

    trace, addrs = run_single(factory, consistency)
    assert ordered(trace, "px86", addrs, 0, 1) == px86_ordered
    assert ordered(trace, "dpox86", addrs, 0, 1) == dpox86_ordered
    assert ordered(trace, "epoch", addrs, 0, 1) == epoch_ordered
    # Strict orders everything in trace order; the x86 models never
    # order more than dpox86 does.
    assert ordered(trace, "strict", addrs, 0, 1)


class TestCommitPoints:
    """What commits a pending weak flush."""

    @pytest.mark.parametrize("consistency", ["sc", "tso"])
    def test_rmw_commits(self, consistency):
        def factory(x, y, z):
            def body(ctx):
                yield from ctx.store(x, 1)
                yield from ctx.clflushopt(x)
                yield from ctx.fetch_add(z, 1)
                yield from ctx.store(y, 1)

            return body

        trace, addrs = run_single(factory, consistency)
        assert ordered(trace, "px86", addrs, 0, 1)

    @pytest.mark.parametrize("consistency", ["sc", "tso"])
    def test_failed_cas_commits(self, consistency):
        """A failed CAS still carries the lock prefix's fence effect."""

        def factory(x, y, z):
            def body(ctx):
                yield from ctx.store(x, 1)
                yield from ctx.clflushopt(x)
                ok, observed = yield from ctx.cas(z, 99, 1)
                assert not ok
                yield from ctx.store(y, 1)

            return body

        trace, addrs = run_single(factory, consistency)
        assert ordered(trace, "px86", addrs, 0, 1)

    def test_uncommitted_flush_never_orders(self):
        """A weak flush with no fence before thread end orders nothing
        under px86 — the pending set dies with the thread."""

        def factory(x, y, z):
            def body(ctx):
                yield from ctx.store(x, 1)
                yield from ctx.clflushopt(x)
                yield from ctx.store(y, 1)
                yield from ctx.store(z, 1)

            return body

        trace, addrs = run_single(factory)
        for pair in ((0, 1), (0, 2), (1, 2)):
            assert not ordered(trace, "px86", addrs, *pair)

    def test_barrier_lowered_to_sfence_under_px86(self):
        """PERSISTBARRIER acts as the commit fence for pending flushes
        under px86 (but adds no ordering of its own)."""

        def factory(x, y, z):
            def body(ctx):
                yield from ctx.store(x, 1)
                yield from ctx.clflushopt(x)
                yield from ctx.persist_barrier()
                yield from ctx.store(y, 1)

            return body

        trace, addrs = run_single(factory)
        assert ordered(trace, "px86", addrs, 0, 1)


class TestPerLocationFifo:
    def test_same_cell_persists_stay_fifo(self):
        """Two stores to one cell then a clflush: the flush orders both
        (same-block chains make the older persist a dependency of the
        newer), so a later store is ordered after both even under px86."""

        def factory(x, y, z):
            def body(ctx):
                yield from ctx.store(x, 1)
                yield from ctx.store(x, 2)
                yield from ctx.clflush(x)
                yield from ctx.store(y, 1)

            return body

        trace, addrs = run_single(factory)
        graph = analyze_graph(trace, "px86").graph
        x_pids = [
            pid
            for pid, node in enumerate(graph.nodes)
            if node.addr == addrs[0]
        ]
        y_pid, = [
            pid
            for pid, node in enumerate(graph.nodes)
            if node.addr == addrs[1]
        ]
        ancestors = graph.ancestors(y_pid)
        assert all(pid in ancestors for pid in x_pids)


class TestRegistry:
    def test_px86_family_registered(self):
        assert "px86" in MODELS and "dpox86" in MODELS
        px86 = MODELS["px86"]()
        assert not px86.track_volatile_conflicts
        assert not px86.detect_load_before_store

    def test_critical_path_discriminates(self):
        """The summary metric alone separates the family: the weak-flush
        chain has critical path 1 under px86 and 2 under dpox86."""

        def factory(x, y, z):
            def body(ctx):
                yield from ctx.store(x, 1)
                yield from ctx.clflushopt(x)
                yield from ctx.store(y, 1)

            return body

        trace, _ = run_single(factory)
        assert critical_path(trace, "px86") == 1
        assert critical_path(trace, "dpox86") == 2
