"""Tests for Graphviz DOT export of persist DAGs."""

import pytest

from repro.core import analyze_graph, graph_to_dot

from tests.core.helpers import B, P, S, build


@pytest.fixture
def small_graph():
    trace = build(
        [(0, S, P, 1), (0, B), (0, S, P + 64, 2), (1, S, P + 128, 3)]
    )
    return analyze_graph(trace, "epoch").graph


class TestDotExport:
    def test_structure(self, small_graph):
        text = graph_to_dot(small_graph, title="test graph")
        assert text.startswith("digraph persists {")
        assert text.rstrip().endswith("}")
        assert 'label="test graph";' in text

    def test_one_node_per_persist(self, small_graph):
        text = graph_to_dot(small_graph)
        for node in small_graph.nodes:
            assert f"p{node.pid} [" in text

    def test_edges_match_frontier(self, small_graph):
        text = graph_to_dot(small_graph)
        edges = [line for line in text.splitlines() if "->" in line]
        assert len(edges) == small_graph.edge_count()

    def test_address_names_substituted(self, small_graph):
        text = graph_to_dot(small_graph, address_names={P: "head"})
        assert "head" in text

    def test_threads_get_distinct_colors(self, small_graph):
        text = graph_to_dot(small_graph)
        colors = {
            line.split('fillcolor="')[1].split('"')[0]
            for line in text.splitlines()
            if "fillcolor" in line
        }
        assert len(colors) == 2  # two threads in the fixture

    def test_coalesced_writes_annotated(self):
        trace = build([(0, S, P, 1), (0, S, P, 2)])
        graph = analyze_graph(
            trace, "epoch",
        ).graph
        # analyze_graph disables coalescing; build one manually instead.
        from repro.core import AnalysisConfig, GraphDomain, analyze

        domain = GraphDomain()
        analyze(trace, "epoch", AnalysisConfig(coalescing=True), domain=domain)
        text = graph_to_dot(domain)
        assert "(+1)" in text

    def test_size_limit(self, small_graph):
        with pytest.raises(ValueError):
            graph_to_dot(small_graph, max_nodes=1)
