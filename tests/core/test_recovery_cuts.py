"""Tests for the recovery observer: cuts and failure-state images."""

import random

import pytest

from repro.core import (
    CutStats,
    FailureInjector,
    GraphDomain,
    analyze_graph,
    cut_content_key,
    enumerate_cuts,
    full_cut,
    image_at_cut,
    is_consistent_cut,
    linear_extension_cut,
    minimal_cut,
    prefix_cut,
    sample_cut,
    unique_cuts,
)
from repro.errors import RecoveryError
from repro.memory import NvramImage
from repro.trace import EventKind, make_access

from tests.core.helpers import B, P, S, build


def diamond_graph():
    """a -> {b, c} -> d: the classic four-node diamond."""
    domain = GraphDomain()

    def persist(deps, addr):
        event = make_access(
            len(domain.nodes), 0, EventKind.STORE, addr, 8, addr % 251, True
        )
        return domain.persist(deps, event)

    a = persist(frozenset(), P)
    b = persist(frozenset({a}), P + 8)
    c = persist(frozenset({a}), P + 16)
    d = persist(frozenset({b, c}), P + 24)
    return domain, (a, b, c, d)


class TestCutPredicates:
    def test_downward_closed_cuts_accepted(self):
        graph, (a, b, c, d) = diamond_graph()
        for cut in ([], [a], [a, b], [a, c], [a, b, c], [a, b, c, d]):
            assert is_consistent_cut(graph, cut)

    def test_gapped_cuts_rejected(self):
        graph, (a, b, c, d) = diamond_graph()
        for cut in ([b], [d], [a, d], [a, b, d]):
            assert not is_consistent_cut(graph, cut)

    def test_unknown_pid_rejected(self):
        graph, _ = diamond_graph()
        assert not is_consistent_cut(graph, [99])


class TestCutConstructors:
    def test_full_and_prefix(self):
        graph, nodes = diamond_graph()
        assert full_cut(graph) == frozenset(nodes)
        assert prefix_cut(graph, 2) == frozenset(nodes[:2])
        assert is_consistent_cut(graph, prefix_cut(graph, 3))
        with pytest.raises(RecoveryError):
            prefix_cut(graph, 9)

    def test_minimal_cut(self):
        graph, (a, b, c, d) = diamond_graph()
        assert minimal_cut(graph, a) == {a}
        assert minimal_cut(graph, b) == {a, b}
        assert minimal_cut(graph, d) == {a, b, c, d}
        with pytest.raises(RecoveryError):
            minimal_cut(graph, 42)

    def test_sample_cuts_always_consistent(self):
        graph, _ = diamond_graph()
        rng = random.Random(0)
        for _ in range(50):
            assert is_consistent_cut(graph, sample_cut(graph, rng, 0.5))

    def test_sample_extremes(self):
        graph, _ = diamond_graph()
        rng = random.Random(0)
        assert sample_cut(graph, rng, 0.0) == frozenset()
        assert sample_cut(graph, rng, 1.0) == full_cut(graph)

    def test_linear_extension_cuts_consistent(self):
        graph, _ = diamond_graph()
        rng = random.Random(3)
        sizes = set()
        for _ in range(100):
            cut = linear_extension_cut(graph, rng)
            assert is_consistent_cut(graph, cut)
            sizes.add(len(cut))
        # Depth should vary across the whole range.
        assert sizes == {0, 1, 2, 3, 4}

    def test_linear_extension_reaches_sparse_deep_states(self):
        """The extension sampler must produce {a, b} without c (or the
        symmetric {a, c}) — the states plain sampling rarely reaches."""
        graph, (a, b, c, _) = diamond_graph()
        rng = random.Random(7)
        seen = {frozenset(linear_extension_cut(graph, rng)) for _ in range(200)}
        assert frozenset({a, b}) in seen or frozenset({a, c}) in seen


def random_graph(rng, size):
    """A random persist DAG: each node depends on up to 3 earlier ones."""
    domain = GraphDomain()
    for index in range(size):
        count = rng.randint(0, min(index, 3))
        deps = frozenset(rng.sample(range(index), count))
        event = make_access(
            index,
            rng.randrange(4),
            EventKind.STORE,
            P + 8 * index,
            8,
            index + 1,
            True,
        )
        domain.persist(deps, event)
    return domain


class TestCutPropertiesOnRandomDags:
    """Seeded property tests: every constructor yields consistent cuts."""

    SEEDS = range(10)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_sample_cut_consistent(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, rng.randint(1, 40))
        for _ in range(25):
            probability = rng.random()
            assert is_consistent_cut(
                graph, sample_cut(graph, rng, probability)
            )

    @pytest.mark.parametrize("seed", SEEDS)
    def test_linear_extension_cut_consistent(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, rng.randint(1, 40))
        for _ in range(25):
            assert is_consistent_cut(graph, linear_extension_cut(graph, rng))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_minimal_cut_consistent_for_every_persist(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, rng.randint(1, 40))
        for pid in range(len(graph.nodes)):
            cut = minimal_cut(graph, pid)
            assert pid in cut
            assert is_consistent_cut(graph, cut)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_prefix_cut_consistent_at_every_depth(self, seed):
        rng = random.Random(seed)
        graph = random_graph(rng, rng.randint(1, 40))
        for count in range(len(graph.nodes) + 1):
            assert is_consistent_cut(graph, prefix_cut(graph, count))


class TestEnumeration:
    def test_diamond_has_six_cuts(self):
        graph, _ = diamond_graph()
        cuts = list(enumerate_cuts(graph))
        assert len(cuts) == 6  # {}, a, ab, ac, abc, abcd
        assert len(set(cuts)) == 6
        for cut in cuts:
            assert is_consistent_cut(graph, cut)

    def test_limit_enforced(self):
        domain = GraphDomain()
        for index in range(20):  # 20 independent persists: 2^20 cuts
            event = make_access(
                index, 0, EventKind.STORE, P + 64 * index, 8, 1, True
            )
            domain.persist(frozenset(), event)
        with pytest.raises(RecoveryError):
            list(enumerate_cuts(domain, limit=1000))


def twin_write_graph():
    """Two unordered persists writing the *same* bytes to the *same*
    address — the degenerate case where distinct cuts share content."""
    domain = GraphDomain()
    for index in range(2):
        event = make_access(index, index, EventKind.STORE, P, 8, 7, True)
        domain.persist(frozenset(), event)
    return domain


class TestCutContentKeys:
    def test_key_is_deterministic_and_order_insensitive(self):
        graph, (a, b, c, d) = diamond_graph()
        assert cut_content_key(graph, [a, b]) == cut_content_key(graph, [b, a])
        assert cut_content_key(graph, [a, b]) == cut_content_key(graph, (b, a))

    def test_distinct_content_distinct_keys(self):
        graph, (a, b, c, d) = diamond_graph()
        keys = {cut_content_key(graph, cut) for cut in enumerate_cuts(graph)}
        assert len(keys) == 6  # every diamond cut writes different bytes

    def test_equal_content_equal_keys(self):
        graph = twin_write_graph()
        assert cut_content_key(graph, [0]) == cut_content_key(graph, [1])
        assert cut_content_key(graph, [0]) == cut_content_key(graph, [0, 1])
        assert cut_content_key(graph, []) != cut_content_key(graph, [0])

    def test_equal_keys_mean_equal_images(self):
        graph = twin_write_graph()
        base = NvramImage(P, 4096)
        one = image_at_cut(graph, {0}, base)
        both = image_at_cut(graph, {0, 1}, base)
        assert one.read_bytes(P, 16) == both.read_bytes(P, 16)


class TestUniqueCuts:
    def test_all_distinct_yields_everything(self):
        graph, _ = diamond_graph()
        stats = CutStats()
        cuts = list(unique_cuts(graph, stats=stats))
        assert len(cuts) == 6
        assert stats.enumerated == stats.unique == 6
        assert stats.deduplicated == 0

    def test_duplicate_content_collapsed(self):
        graph = twin_write_graph()
        stats = CutStats()
        cuts = list(unique_cuts(graph, stats=stats))
        # {} and one representative of {{0}, {1}, {0, 1}}.
        assert len(cuts) == 2
        assert stats.enumerated == 4
        assert stats.unique == 2
        assert stats.deduplicated == 2
        for cut in cuts:
            assert is_consistent_cut(graph, cut)

    def test_representative_is_first_and_smallest(self):
        """Enumeration is in non-decreasing size order, so the kept
        representative is a smallest cut of its content class."""
        graph = twin_write_graph()
        cuts = list(unique_cuts(graph))
        assert cuts[0] == frozenset()
        assert len(cuts[1]) == 1

    def test_limit_still_enforced(self):
        domain = GraphDomain()
        for index in range(20):  # 2^20 cuts of distinct content
            event = make_access(
                index, 0, EventKind.STORE, P + 64 * index, 8, 1, True
            )
            domain.persist(frozenset(), event)
        with pytest.raises(RecoveryError):
            list(unique_cuts(domain, limit=1000))

    def test_stats_optional(self):
        graph, _ = diamond_graph()
        assert len(list(unique_cuts(graph))) == 6


class TestImages:
    def test_image_reflects_cut_exactly(self):
        graph, (a, b, c, d) = diamond_graph()
        base = NvramImage(P, 4096)
        image = image_at_cut(graph, {a, b}, base)
        assert image.read(P, 8) == P % 251
        assert image.read(P + 8, 8) == (P + 8) % 251
        assert image.read(P + 16, 8) == 0  # c not included
        assert image.read(P + 24, 8) == 0  # d not included
        # Base image untouched.
        assert base.read(P, 8) == 0

    def test_inconsistent_cut_rejected(self):
        graph, (a, b, c, d) = diamond_graph()
        base = NvramImage(P, 4096)
        with pytest.raises(RecoveryError):
            image_at_cut(graph, {d}, base)

    def test_full_cut_image_matches_final_memory(self, cwl_1t):
        graph = analyze_graph(cwl_1t.trace, "epoch").graph
        image = image_at_cut(graph, full_cut(graph), cwl_1t.base_image)
        final = cwl_1t.machine.memory.region("persistent")
        assert image.read_bytes(final.base, final.size) == bytes(final.data)


class TestInjector:
    def test_iterators_yield_consistent_cuts(self, cwl_1t):
        graph = analyze_graph(cwl_1t.trace, "strand").graph
        injector = FailureInjector(graph, cwl_1t.base_image)
        assert injector.persist_count == len(graph.nodes)
        for cut, image in injector.random_images(5, seed=1):
            assert is_consistent_cut(graph, cut)
            assert image.base == cwl_1t.base_image.base
        for cut, _ in injector.prefix_images(step=100):
            assert is_consistent_cut(graph, cut)
        for cut, _ in injector.minimal_images(step=97):
            assert is_consistent_cut(graph, cut)
        for cut, _ in injector.extension_images(5, seed=2):
            assert is_consistent_cut(graph, cut)

    def test_bad_steps_rejected(self, cwl_1t):
        graph = analyze_graph(cwl_1t.trace, "strand").graph
        injector = FailureInjector(graph, cwl_1t.base_image)
        with pytest.raises(RecoveryError):
            list(injector.prefix_images(step=0))
        with pytest.raises(RecoveryError):
            list(injector.minimal_images(step=0))
