"""Tests for persist-epoch race detection (paper Section 5.2)."""

from repro.core import (
    analyze_races,
    find_data_races,
    find_persist_epoch_races,
    is_race_free,
    split_epochs,
)

from tests.core.helpers import B, L, P, R, S, V, build


class TestSplitEpochs:
    def test_barriers_delimit_epochs(self):
        trace = build(
            [(0, S, P, 1), (0, B), (0, S, P + 8, 2), (0, B), (0, L, V, 0)]
        )
        epochs = split_epochs(trace)
        assert [(e.thread, e.index) for e in epochs] == [(0, 0), (0, 1), (0, 2)]
        assert [e.persists for e in epochs] == [1, 1, 0]

    def test_footprints_recorded(self):
        trace = build([(0, S, P, 1), (0, L, V, 0)])
        (epoch,) = split_epochs(trace)
        assert P // 8 in epoch.writes
        assert V // 8 in epoch.reads

    def test_sync_accesses_counted(self):
        trace = build([(0, R, V, 1, True), (0, S, P, 1)])
        (epoch,) = split_epochs(trace)
        assert epoch.sync_accesses == 1

    def test_threads_tracked_independently(self):
        trace = build([(0, S, P, 1), (1, S, P + 64, 2), (0, B), (1, B)])
        epochs = split_epochs(trace)
        assert {e.thread for e in epochs} == {0, 1}

    def test_open_epochs_closed_at_end(self):
        trace = build([(0, S, P, 1)])
        assert len(split_epochs(trace)) == 1

    def test_granularity_coarsens_footprints(self):
        trace = build([(0, S, P, 1), (0, S, P + 8, 2)])
        (fine,) = split_epochs(trace, tracking_granularity=8)
        (coarse,) = split_epochs(trace, tracking_granularity=64)
        assert len(fine.writes) == 2
        assert len(coarse.writes) == 1


class TestDataRaces:
    def test_unsynchronized_flag_is_a_data_race(self):
        trace = build(
            [
                (0, S, P, 1),
                (0, S, V, 1),       # ordinary volatile write, no sync
                (1, L, V, 1),       # ordinary read: data race
                (1, S, P + 64, 2),
            ]
        )
        races = find_data_races(trace)
        assert len(races) == 1
        assert races[0].block == V // 8
        assert races[0].kind == "data"
        assert "race" in races[0].describe()

    def test_sync_edges_order_ordinary_accesses(self):
        """Message passing through a sync flag: the payload handoff is
        happens-before ordered, so no data race."""
        trace = build(
            [
                (0, S, V + 64, 7),       # payload (ordinary)
                (0, S, V, 1, True),      # sync release
                (1, L, V, 1, True),      # sync acquire
                (1, L, V + 64, 7),       # payload read: HB-ordered
            ]
        )
        assert find_data_races(trace) == []

    def test_write_write_race(self):
        trace = build([(0, S, V, 1), (1, S, V, 2)])
        assert len(find_data_races(trace)) == 1

    def test_read_read_is_not_a_race(self):
        trace = build([(0, L, V, 0), (1, L, V, 0)])
        assert find_data_races(trace) == []

    def test_same_thread_never_races(self):
        trace = build([(0, S, V, 1), (0, L, V, 1), (0, S, V, 2)])
        assert find_data_races(trace) == []

    def test_load_before_store_race_detected(self):
        trace = build([(0, L, V, 0), (1, S, V, 1)])
        assert len(find_data_races(trace)) == 1


class TestSyncRaces:
    def test_contending_sync_accesses_reported(self):
        trace = build(
            [(0, R, V, 1, True), (1, R, V, 2, True)]
        )
        report = analyze_races(trace)
        sync_pairs = [p for p in report.pairs if p.kind == "sync"]
        assert len(sync_pairs) == 1

    def test_sync_races_not_in_data_report(self):
        trace = build([(0, R, V, 1, True), (1, R, V, 2, True)])
        assert find_data_races(trace) == []


class TestPersistEpochRaces:
    def test_racing_persisting_epochs_flagged(self):
        trace = build(
            [
                (0, S, P, 1),       # persist in the epoch
                (0, S, V, 1),       # unsynchronized flag
                (1, L, V, 1),
                (1, S, P + 64, 2),  # persist in the racing epoch
            ]
        )
        races = find_persist_epoch_races(trace)
        assert len(races) == 1

    def test_persist_free_epoch_does_not_count(self):
        trace = build(
            [
                (0, S, V, 1),       # volatile-only epoch (no persist)
                (1, L, V, 1),
                (1, S, P + 64, 2),
            ]
        )
        assert find_persist_epoch_races(trace) == []

    def test_paper_discipline_isolates_lock_accesses(self):
        """Barriers around sync accesses put them in persist-free epochs:
        sync races exist but no persist-epoch race remains."""
        trace = build(
            [
                (0, S, P, 1),
                (0, B),
                (0, R, V, 1, True),   # "lock" access in its own epoch
                (0, B),
                (1, B),
                (1, R, V, 2, True),
                (1, B),
                (1, S, P + 64, 2),
            ]
        )
        report = analyze_races(trace)
        assert any(p.kind == "sync" for p in report.pairs)
        assert report.persist_epoch_races() == []
        assert is_race_free(trace)

    def test_sync_sharing_epoch_with_persists_races(self):
        """The racing-epochs pattern: lock accesses and persists in one
        epoch on both threads."""
        trace = build(
            [
                (0, R, V, 1, True),
                (0, S, P, 1),
                (1, R, V, 2, True),
                (1, S, P + 64, 2),
            ]
        )
        races = find_persist_epoch_races(trace)
        assert races and all(p.kind == "sync" for p in races)


class TestQueueDiscipline:
    def test_race_free_cwl_is_clean(self, cwl_4t):
        """CWL with barriers around the lock follows the paper's
        discipline: no persist-epoch races."""
        assert is_race_free(cwl_4t.trace)

    def test_racing_cwl_has_persist_epoch_races(self, cwl_4t_racing):
        """Removing the lock barriers is exactly the paper's 'Racing
        Epochs' configuration."""
        assert find_persist_epoch_races(cwl_4t_racing.trace)

    def test_tlc_races_by_design(self, tlc_4t):
        """2LC's reserve lock shares an epoch with the data copy, so it
        intentionally embraces persist-epoch races (Table 1 shows its
        Epoch and Racing Epochs columns identical)."""
        assert find_persist_epoch_races(tlc_4t.trace)

    def test_single_thread_cannot_race(self, cwl_1t):
        assert is_race_free(cwl_1t.trace)

    def test_queue_traces_have_no_data_races(self, cwl_4t, tlc_4t):
        """Both designs are properly locked: ordinary accesses never race
        — persist-epoch races come only from lock contention."""
        assert find_data_races(cwl_4t.trace) == []
        assert find_data_races(tlc_4t.trace) == []
