"""BitsetGraphDomain vs. GraphDomain: exact-agreement property tests.

The bitset domain is only admissible as the default because it is
*indistinguishable* from the frozenset reference — same nodes, same
dependence frontiers, same cuts, same canonical keys.  These tests pin
that contract three ways: direct lockstep driving of the two domains,
hypothesis-generated random traces through the full ``analyze``
pipeline, and every registered fuzz target's real trace.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import canonical_dag_key
from repro.core import BitsetGraphDomain, GraphDomain, analyze_graph
from repro.core.bitgraph import iter_bits, mask_of
from repro.core.recovery import (
    cut_members,
    enumerate_cut_masks,
    enumerate_cuts,
)
from repro.errors import RecoveryError
from repro.fuzz import TARGETS, make_target
from repro.sim.scheduler import RandomScheduler
from tests.core.helpers import B, NS, P, S, build

MODELS = ("strict", "epoch", "strand", "bpfs", "px86", "dpox86")


def assert_domains_agree(reference: GraphDomain, bitset: BitsetGraphDomain):
    """The two domains' observable DAGs must be identical."""
    assert bitset.persist_count == reference.persist_count
    assert bitset.critical_path() == reference.critical_path()
    assert bitset.levels() == reference.levels()
    assert bitset.level_histogram() == reference.level_histogram()
    assert bitset.edge_count() == reference.edge_count()
    for ref_node, bit_node in zip(reference.nodes, bitset.nodes):
        assert bit_node.pid == ref_node.pid
        assert bit_node.thread == ref_node.thread
        assert bit_node.deps == ref_node.deps
        assert bit_node.writes == ref_node.writes
    for pid in range(reference.persist_count):
        assert bitset.ancestors(pid) == reference.ancestors(pid)
    if reference.persist_count:
        assert canonical_dag_key(bitset) == canonical_dag_key(reference)


def assert_cut_families_agree(
    reference: GraphDomain, bitset: BitsetGraphDomain, limit: int = 5_000
):
    """Exhaustive cut enumeration must produce the same family."""
    try:
        expected = {
            frozenset(cut) for cut in enumerate_cuts(reference, limit=limit)
        }
    except RecoveryError:
        return  # too many cuts to compare exhaustively at this size
    masks = list(enumerate_cut_masks(bitset, limit=limit))
    assert {frozenset(cut_members(mask)) for mask in masks} == expected
    assert len(masks) == len(expected)


def analyzed_pair(trace, model):
    """Analyze one trace under both domains."""
    reference = analyze_graph(trace, model, domain="graph")
    bitset = analyze_graph(trace, model, domain="bitset")
    assert isinstance(bitset.graph, BitsetGraphDomain)
    assert bitset.persist_count == reference.persist_count
    assert bitset.critical_path == reference.critical_path
    assert bitset.mean_concurrency == reference.mean_concurrency
    assert bitset.level_histogram == reference.level_histogram
    return reference.graph, bitset.graph


class TestLockstep:
    """Drive both domains directly through the Domain protocol."""

    def random_dag(self, seed: int, size: int):
        """Build the same random DAG in both domains; compare as we go."""
        import random

        rng = random.Random(seed)
        reference, bitset = GraphDomain(), BitsetGraphDomain()
        for seq in range(size):
            event = build([(rng.randrange(3), S, P + 8 * seq, seq)])[0]
            ref_value, bit_value = reference.bottom, bitset.bottom
            for pid in range(seq):
                if rng.random() < 0.4:
                    ref_value = reference.join(
                        ref_value, reference.value_of(pid)
                    )
                    bit_value = bitset.join(bit_value, bitset.value_of(pid))
            assert reference.persist(ref_value, event) == bitset.persist(
                bit_value, event
            )
        return reference, bitset

    @pytest.mark.parametrize("seed", range(8))
    def test_random_dags_agree(self, seed):
        reference, bitset = self.random_dag(seed, size=12)
        assert_domains_agree(reference, bitset)
        assert_cut_families_agree(reference, bitset)

    @pytest.mark.parametrize("seed", range(4))
    def test_leq_agrees_on_every_value_token_pair(self, seed):
        reference, bitset = self.random_dag(seed, size=10)
        for source in range(reference.persist_count):
            for token in range(reference.persist_count):
                assert reference.leq(
                    reference.value_of(source), token
                ) == bitset.leq(bitset.value_of(source), token)

    def test_joined_values_leq_agrees(self):
        reference, bitset = self.random_dag(seed=99, size=10)
        count = reference.persist_count
        for first in range(count):
            for second in range(first + 1, count):
                ref_value = reference.join(
                    reference.value_of(first), reference.value_of(second)
                )
                bit_value = bitset.join(
                    bitset.value_of(first), bitset.value_of(second)
                )
                for token in range(count):
                    assert reference.leq(ref_value, token) == bitset.leq(
                        bit_value, token
                    )


#: Random-trace strategy: accesses to a handful of persistent words from
#: up to three threads, with barriers and strand annotations mixed in.
def trace_specs():
    access = st.tuples(
        st.integers(0, 2),
        st.just(S),
        st.sampled_from([P, P + 8, P + 16, P + 64]),
        st.integers(0, 255),
    )
    annotation = st.tuples(st.integers(0, 2), st.sampled_from([B, NS]))
    return st.lists(st.one_of(access, annotation), min_size=1, max_size=14)


class TestAnalyzePipeline:
    @settings(max_examples=60, deadline=None)
    @given(specs=trace_specs(), model=st.sampled_from(MODELS))
    def test_random_traces_agree(self, specs, model):
        trace = build(list(specs))
        reference, bitset = analyzed_pair(trace, model)
        assert_domains_agree(reference, bitset)
        assert_cut_families_agree(reference, bitset, limit=2_000)

    @pytest.mark.parametrize("name", sorted(TARGETS))
    @pytest.mark.parametrize("model", ("epoch", "strand"))
    def test_fuzz_targets_agree(self, name, model):
        target = make_target(name)
        run = target.build(
            target.thread_range[0],
            target.ops_range[0],
            RandomScheduler(seed=7),
        )
        reference, bitset = analyzed_pair(run.trace, model)
        assert_domains_agree(reference, bitset)


#: Flush-heavy litmus programs: the traces that exercise the new
#: clflush/clflushopt/clwb/sfence event kinds through both domains.
_FLUSH_LITMUS = (
    "mp-clflush",
    "mp-clflushopt",
    "mp-clflushopt-sfence",
    "mp-clwb-sfence",
    "chain-clflushopt-sfence",
    "flush-rmw-commit",
    "flush-casfail-commit",
    "cross-thread-flush",
    "same-line-fifo",
)


class TestFlushTraces:
    """Lockstep agreement on traces containing the x86 flush family."""

    @pytest.mark.parametrize("name", _FLUSH_LITMUS)
    @pytest.mark.parametrize("model", MODELS)
    def test_flush_litmus_agree(self, name, model):
        from repro.litmus import corpus_by_name

        program = corpus_by_name()[name]
        machine, _ = program.build(RandomScheduler(seed=11))
        trace = machine.run()
        reference, bitset = analyzed_pair(trace, model)
        assert_domains_agree(reference, bitset)
        assert_cut_families_agree(reference, bitset, limit=2_000)


class TestBitHelpers:
    def test_iter_bits_ascending(self):
        assert list(iter_bits(0b101101)) == [0, 2, 3, 5]
        assert list(iter_bits(0)) == []

    def test_mask_roundtrip(self):
        assert mask_of(iter_bits(0xDEADBEEF)) == 0xDEADBEEF
        assert mask_of([]) == 0
