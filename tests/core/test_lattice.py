"""Unit and property tests for the dependency-value domains."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GraphDomain, LevelDomain
from repro.trace import EventKind, make_access

ADDR = 0x8000_0000


def persist_event(seq, thread=0, addr=ADDR, value=1):
    return make_access(seq, thread, EventKind.STORE, addr, 8, value, True)


class TestLevelDomain:
    def test_bottom_and_join(self):
        domain = LevelDomain()
        assert domain.bottom == 0
        assert domain.join(3, 5) == 5
        assert domain.join(5, 3) == 5

    def test_persist_increments_level(self):
        domain = LevelDomain()
        first = domain.persist(0, persist_event(0))
        second = domain.persist(first, persist_event(1))
        assert (first, second) == (1, 2)
        assert domain.critical_path() == 2
        assert domain.persist_count == 2

    def test_concurrent_persists_share_level(self):
        domain = LevelDomain()
        domain.persist(0, persist_event(0))
        domain.persist(0, persist_event(1, addr=ADDR + 8))
        assert domain.critical_path() == 1
        assert domain.persist_count == 2

    def test_leq(self):
        domain = LevelDomain()
        assert domain.leq(2, 2)
        assert domain.leq(1, 2)
        assert not domain.leq(3, 2)

    def test_coalesce_is_silent(self):
        domain = LevelDomain()
        token = domain.persist(0, persist_event(0))
        domain.coalesce(token, persist_event(1))
        assert domain.persist_count == 1

    def test_value_of_identity(self):
        domain = LevelDomain()
        token = domain.persist(4, persist_event(0))
        assert domain.value_of(token) == token == 5


class TestGraphDomain:
    def test_persist_records_node(self):
        domain = GraphDomain()
        token = domain.persist(frozenset(), persist_event(0, value=0xAB))
        node = domain.nodes[token]
        assert node.writes == [(ADDR, (0xAB).to_bytes(8, "little"))]
        assert node.deps == frozenset()
        assert node.addr == ADDR

    def test_dependency_closure_is_transitive(self):
        domain = GraphDomain()
        a = domain.persist(frozenset(), persist_event(0))
        b = domain.persist(domain.value_of(a), persist_event(1))
        c = domain.persist(domain.value_of(b), persist_event(2))
        assert domain.ancestors(c) == {a, b}

    def test_join_prunes_dominated(self):
        domain = GraphDomain()
        a = domain.persist(frozenset(), persist_event(0))
        b = domain.persist(domain.value_of(a), persist_event(1))
        joined = domain.join(domain.value_of(a), domain.value_of(b))
        assert joined == frozenset({b})

    def test_join_keeps_incomparable(self):
        domain = GraphDomain()
        a = domain.persist(frozenset(), persist_event(0))
        b = domain.persist(frozenset(), persist_event(1, addr=ADDR + 8))
        joined = domain.join(domain.value_of(a), domain.value_of(b))
        assert joined == frozenset({a, b})

    def test_leq_uses_ancestry(self):
        domain = GraphDomain()
        a = domain.persist(frozenset(), persist_event(0))
        b = domain.persist(domain.value_of(a), persist_event(1))
        unrelated = domain.persist(frozenset(), persist_event(2, addr=ADDR + 8))
        assert domain.leq(frozenset({a}), b)
        assert domain.leq(frozenset({b}), b)
        assert not domain.leq(frozenset({unrelated}), b)
        assert domain.leq(frozenset(), b)

    def test_coalesce_appends_write(self):
        domain = GraphDomain()
        token = domain.persist(frozenset(), persist_event(0, value=1))
        domain.coalesce(token, persist_event(1, addr=ADDR, value=2))
        assert len(domain.nodes[token].writes) == 2
        assert domain.persist_count == 1

    def test_levels_and_critical_path(self):
        domain = GraphDomain()
        a = domain.persist(frozenset(), persist_event(0))
        b = domain.persist(frozenset(), persist_event(1, addr=ADDR + 8))
        c = domain.persist(frozenset({a, b}), persist_event(2, addr=ADDR + 16))
        assert domain.levels() == [1, 1, 2]
        assert domain.critical_path() == 2
        assert domain.edge_count() == 2

    def test_empty_graph(self):
        domain = GraphDomain()
        assert domain.critical_path() == 0
        assert domain.levels() == []


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(0, 100), min_size=3, max_size=3))
def test_level_join_is_semilattice(values):
    domain = LevelDomain()
    a, b, c = values
    assert domain.join(a, b) == domain.join(b, a)
    assert domain.join(a, domain.join(b, c)) == domain.join(domain.join(a, b), c)
    assert domain.join(a, a) == a
    assert domain.join(a, domain.bottom) == a


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(st.booleans(), st.integers(0, 4)), min_size=1, max_size=12))
def test_graph_join_properties_on_random_dags(script):
    """Build a random DAG, then check join laws on node frontier values."""
    domain = GraphDomain()
    values = [frozenset()]
    for chain_from_last, pick in script:
        if chain_from_last and domain.nodes:
            deps = domain.value_of(len(domain.nodes) - 1)
        elif domain.nodes:
            deps = domain.value_of(pick % len(domain.nodes))
        else:
            deps = frozenset()
        token = domain.persist(deps, persist_event(len(domain.nodes)))
        values.append(domain.value_of(token))
    for a in values:
        for b in values:
            joined = domain.join(a, b)
            assert domain.join(a, b) == domain.join(b, a)
            assert domain.join(joined, joined) == joined
            # Pruning must never lose constraints: every member of a and
            # b is either kept or dominated by a kept member.
            kept_closure = set(joined)
            for pid in joined:
                kept_closure |= domain.ancestors(pid)
            for pid in a | b:
                assert pid in kept_closure
