"""Atomic-persist and tracking-granularity semantics (Figures 4 and 5)."""

from repro.core import AnalysisConfig, analyze

from tests.core.helpers import B, L, P, S, V, build


def cp(trace, model, **config):
    return analyze(trace, model, AnalysisConfig(**config)).critical_path


class TestPersistGranularity:
    def test_adjacent_words_serialise_at_word_granularity(self):
        trace = build([(0, S, P, 1), (0, S, P + 8, 2)])
        assert cp(trace, "strict", persist_granularity=8) == 2

    def test_adjacent_words_coalesce_in_larger_blocks(self):
        trace = build([(0, S, P, 1), (0, S, P + 8, 2)])
        result = analyze(
            trace, "strict", AnalysisConfig(persist_granularity=16)
        )
        assert result.critical_path == 1
        assert result.persist_count == 1
        assert result.coalesced == 1

    def test_contiguous_run_collapses_to_one_persist_per_block(self):
        trace = build([(0, S, P + 8 * i, i + 1) for i in range(8)])
        for granularity, expected in ((8, 8), (16, 4), (32, 2), (64, 1)):
            assert (
                cp(trace, "strict", persist_granularity=granularity)
                == expected
            )

    def test_coalescing_blocked_by_intervening_dependence(self):
        # A in block0, C elsewhere (level 2 under strict), then A' back in
        # block0 with deps level 2 > pending level 1: must not coalesce,
        # and strong persist atomicity orders it after A.
        trace = build([(0, S, P, 1), (0, S, P + 512, 2), (0, S, P + 8, 3)])
        result = analyze(
            trace, "strict", AnalysisConfig(persist_granularity=16)
        )
        assert result.coalesced == 0
        assert result.critical_path == 3

    def test_disabled_coalescing_forces_spa_chain(self):
        trace = build([(0, S, P, 1), (0, S, P, 2), (0, S, P, 3)])
        result = analyze(
            trace, "epoch", AnalysisConfig(coalescing=False)
        )
        assert result.critical_path == 3
        assert result.persist_count == 3

    def test_epoch_insensitive_to_persist_granularity_within_epoch(self):
        trace = build([(0, S, P + 8 * i, i + 1) for i in range(8)])
        assert cp(trace, "epoch", persist_granularity=8) == 1
        assert cp(trace, "epoch", persist_granularity=64) == 1


class TestTrackingGranularity:
    def test_false_sharing_introduces_constraint(self):
        # t0 persists X; t1 loads the *adjacent* word then persists B
        # after a barrier.  No conflict at 8-byte tracking; at 16 bytes
        # the two words share a block and the load inherits X.
        trace = build(
            [
                (0, S, P, 1),
                (1, L, P + 8, 0),
                (1, B),
                (1, S, P + 1024, 2),
            ]
        )
        assert cp(trace, "epoch", tracking_granularity=8) == 1
        assert cp(trace, "epoch", tracking_granularity=16) == 2

    def test_false_sharing_through_volatile_addresses(self):
        trace = build(
            [
                (0, S, P, 1),
                (0, B),
                (0, S, V, 1),
                (1, L, V + 8, 0),
                (1, B),
                (1, S, P + 1024, 2),
            ]
        )
        assert cp(trace, "epoch", tracking_granularity=8) == 1
        assert cp(trace, "epoch", tracking_granularity=16) == 2

    def test_strict_insensitive_to_tracking_granularity_single_thread(self):
        trace = build([(0, S, P + 64 * i, i + 1) for i in range(5)])
        assert (
            cp(trace, "strict", tracking_granularity=8)
            == cp(trace, "strict", tracking_granularity=256)
            == 5
        )

    def test_wide_tracking_does_not_create_self_constraints(self):
        # A single access should never order after itself.
        trace = build([(0, S, P, 1)])
        assert cp(trace, "epoch", tracking_granularity=256) == 1


class TestWorkloadSweeps:
    def test_fig4_shape_on_real_trace(self, cwl_1t):
        """Strict critical path falls monotonically with persist size and
        approaches epoch's, which stays flat (Figure 4)."""
        inserts = cwl_1t.total_inserts
        strict = [
            analyze(
                cwl_1t.trace,
                "strict",
                AnalysisConfig(persist_granularity=g),
            ).critical_path_per(inserts)
            for g in (8, 64, 256)
        ]
        epoch = [
            analyze(
                cwl_1t.trace,
                "epoch",
                AnalysisConfig(persist_granularity=g),
            ).critical_path_per(inserts)
            for g in (8, 64, 256)
        ]
        assert strict[0] > strict[1] > strict[2]
        assert epoch[0] == epoch[1] >= epoch[2] - 0.1
        assert strict[2] < 2 * epoch[2] + 1

    def test_fig5_shape_on_real_trace(self, cwl_1t):
        """Epoch critical path rises with tracking granularity toward
        strict, which is flat (Figure 5)."""
        inserts = cwl_1t.total_inserts
        strict = [
            analyze(
                cwl_1t.trace,
                "strict",
                AnalysisConfig(tracking_granularity=g),
            ).critical_path_per(inserts)
            for g in (8, 256)
        ]
        epoch = [
            analyze(
                cwl_1t.trace,
                "epoch",
                AnalysisConfig(tracking_granularity=g),
            ).critical_path_per(inserts)
            for g in (8, 64, 256)
        ]
        assert strict[0] == strict[1]
        assert epoch[0] < epoch[1] < epoch[2]
        assert epoch[2] > 0.5 * strict[0]
