"""Figure 1, executable (Section 4.2, relaxed persistency and atomicity).

The paper shows that one cannot simultaneously (1) let store visibility
reorder across persist barriers, (2) enforce persist barriers, and (3)
guarantee strong persist atomicity: two threads persisting to A and B in
opposite barrier-separated orders would create a persist-order cycle if
their stores became visible out of program order.

Our machine is sequentially consistent, which is exactly one of the two
legal resolutions the paper names ("coupling persist and store barriers
— every persist barrier also prevents store visibility from
reordering").  These tests assert that under SC the Figure 1 program is
always acyclic and strong persist atomicity agrees with the trace's
store order — for both interleavings of the two threads.
"""

import pytest

from repro.core import analyze_graph

from tests.core.helpers import B, P, S, build

A_ADDR = P
B_ADDR = P + 64


def figure1_trace(first_thread):
    """Both threads persist to A and B in opposite orders with a persist
    barrier between; ``first_thread`` runs first (both serial orders)."""
    thread1 = [(0, S, A_ADDR, 1), (0, B), (0, S, B_ADDR, 1)]
    thread2 = [(1, S, B_ADDR, 2), (1, B), (1, S, A_ADDR, 2)]
    ordered = thread1 + thread2 if first_thread == 0 else thread2 + thread1
    return build(ordered)


@pytest.mark.parametrize("first_thread", [0, 1])
@pytest.mark.parametrize("model", ["strict", "epoch", "strand"])
def test_figure1_is_acyclic_under_sc(first_thread, model):
    """The DAG engine must terminate with a valid level assignment (a
    cycle would make a topological level assignment impossible — by
    construction our pid order is topological, so the real assertion is
    that every dependency points backwards and levels are consistent)."""
    trace = figure1_trace(first_thread)
    graph = analyze_graph(trace, model).graph
    levels = graph.levels()
    for node in graph.nodes:
        for dep in node.deps:
            assert dep < node.pid
            assert levels[dep] < levels[node.pid]


@pytest.mark.parametrize("first_thread", [0, 1])
@pytest.mark.parametrize("model", ["strict", "epoch", "strand"])
def test_strong_persist_atomicity_matches_store_order(first_thread, model):
    """Persists to each address serialise in the order the stores became
    visible — the definition of strong persist atomicity."""
    trace = figure1_trace(first_thread)
    graph = analyze_graph(trace, model).graph
    for addr in (A_ADDR, B_ADDR):
        pids = [node.pid for node in graph.nodes if node.addr == addr]
        assert len(pids) == 2
        first, second = pids
        assert first in graph.ancestors(second)
        # Store order in the trace agrees with persist order.
        assert graph.nodes[first].first_seq < graph.nodes[second].first_seq


@pytest.mark.parametrize("first_thread", [0, 1])
def test_barrier_edges_enforced_per_thread(first_thread):
    """Each thread's second persist depends on its first (the barrier),
    regardless of interleaving — constraint (2) of Figure 1."""
    trace = figure1_trace(first_thread)
    graph = analyze_graph(trace, "epoch").graph
    by_thread = {}
    for node in graph.nodes:
        by_thread.setdefault(node.thread, []).append(node.pid)
    for pids in by_thread.values():
        first, second = sorted(pids)
        assert first in graph.ancestors(second)
