"""Property test: the paper's race-free discipline works (Section 5.2).

"A simple (yet conservative) way to avoid persist-epoch races is to
place persist barriers before and after all lock acquires and releases,
and to only place locks in the volatile address space."

We formalise it: take any program whose cross-thread communication goes
only through volatile sync accesses (ordinary accesses per-thread
disjoint — i.e., a properly synchronised program), insert a persist
barrier before and after every sync access, and no persist-epoch race
remains.  Hypothesis searches for counterexamples.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import find_persist_epoch_races, is_race_free
from repro.trace import EventKind, MemoryEvent, Trace

from tests.core.helpers import P, V

#: Program step: (thread, action, slot) where action selects the access.
_step = st.tuples(
    st.integers(0, 2),
    st.sampled_from(["persist", "local", "sync_store", "sync_load", "barrier"]),
    st.integers(0, 3),
)


def build_program(script, isolate_sync):
    """Materialise a script; ordinary addresses are thread-private."""
    trace = Trace()
    seq = 0

    def emit(thread, kind, addr=0, size=0, value=0, persistent=False,
             sync=False):
        nonlocal seq
        trace.append(
            MemoryEvent(
                seq=seq,
                thread=thread,
                kind=kind,
                addr=addr,
                size=size,
                value=value,
                persistent=persistent,
                sync=sync,
            )
        )
        seq += 1

    for thread, action, slot in script:
        if action == "persist":
            # Thread-private persistent address: properly synchronised.
            addr = P + 4096 * thread + 8 * slot
            emit(thread, EventKind.STORE, addr, 8, 1, persistent=True)
        elif action == "local":
            addr = V + 4096 * thread + 8 * slot
            emit(thread, EventKind.STORE, addr, 8, 1)
        elif action == "barrier":
            emit(thread, EventKind.PERSIST_BARRIER)
        else:
            # Shared volatile sync word.
            addr = V + 64 * 1024 + 8 * slot
            if isolate_sync:
                emit(thread, EventKind.PERSIST_BARRIER)
            if action == "sync_store":
                emit(thread, EventKind.STORE, addr, 8, 1, sync=True)
            else:
                emit(thread, EventKind.LOAD, addr, 8, 1, sync=True)
            if isolate_sync:
                emit(thread, EventKind.PERSIST_BARRIER)
    return trace


@settings(max_examples=150, deadline=None)
@given(st.lists(_step, max_size=60))
def test_barriers_around_sync_eliminate_persist_epoch_races(script):
    disciplined = build_program(script, isolate_sync=True)
    assert is_race_free(disciplined)


@settings(max_examples=150, deadline=None)
@given(st.lists(_step, max_size=60))
def test_discipline_only_removes_races(script):
    """The disciplined program's races are a subset (empty) of the
    undisciplined program's — barriers never create races."""
    plain = build_program(script, isolate_sync=False)
    disciplined = build_program(script, isolate_sync=True)
    assert len(find_persist_epoch_races(disciplined)) <= len(
        find_persist_epoch_races(plain)
    )


def test_undisciplined_program_can_race():
    """Sanity: the generator can produce racy programs at all."""
    script = [
        (0, "sync_store", 0),
        (0, "persist", 0),
        (1, "sync_load", 0),
        (1, "persist", 0),
    ]
    assert not is_race_free(build_program(script, isolate_sync=False))
    assert is_race_free(build_program(script, isolate_sync=True))
