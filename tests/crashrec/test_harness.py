"""Tests for the crash-during-recovery harness.

Covers the repair-as-a-program contract (clean images plan nothing, the
seeded-buggy log repair plans work it should not), deterministic crash
schedule replay, and the three oracles — including the negative spaces:
origin images that already fail their checker never charge the failure
to repair, and the repair budget truncates instead of raising.
"""

import pytest

from repro.core.analysis import analyze_graph
from repro.core.recovery import FailureInjector, full_cut, minimal_cut
from repro.crashrec import (
    crash_recovery_check,
    replay_schedule,
    run_repair,
)
from repro.errors import RecoveryError
from repro.fuzz.targets import TARGETS, make_target
from repro.inject.report import RepairPlan, RepairStep
from repro.memory.nvram import NvramImage
from repro.sim.scheduler import make_scheduler

#: Every repairable target whose repair is believed correct (the seeded
#: non-idempotent log repair is the deliberate exception).
CORRECT_REPAIRABLE = sorted(
    name
    for name, target in TARGETS.items()
    if target.repairable and name != "log-repair-buggy"
)


def build_run(name, threads=2, ops=3, seed=1):
    return make_target(name).build(
        threads, ops, make_scheduler("random", seed)
    )


def full_image(run, model="epoch"):
    graph = analyze_graph(run.trace, model).graph
    injector = FailureInjector(graph, run.base_image)
    return graph, injector, injector.image_for(full_cut(graph))


def image_bytes(image):
    return image.read_bytes(image.base, image.size)


class TestRunRepair:
    @pytest.mark.parametrize("name", CORRECT_REPAIRABLE)
    def test_clean_full_image_repairs_to_a_noop(self, name):
        run = build_run(name)
        _, _, image = full_image(run)
        outcome = run_repair(run.repair, image, "epoch")
        assert outcome.plan.is_noop
        assert outcome.persist_count == 0
        assert outcome.injector is None
        assert image_bytes(outcome.image) == image_bytes(image)

    def test_noop_repair_returns_a_copy_not_the_input(self):
        run = build_run("log")
        _, _, image = full_image(run)
        outcome = run_repair(run.repair, image, "epoch")
        assert outcome.image is not image

    def test_buggy_log_repair_plans_work_on_a_clean_image(self):
        run = build_run("log-repair-buggy", threads=1, ops=2)
        _, _, image = full_image(run)
        outcome = run_repair(run.repair, image, "epoch")
        assert not outcome.plan.is_noop
        assert outcome.persist_count > 0
        assert outcome.injector is not None
        # The input image is never mutated; the repaired copy differs.
        assert image_bytes(outcome.image) != image_bytes(image)

    def test_repair_emits_its_own_persist_dag(self):
        run = build_run("log-repair-buggy", threads=1, ops=2)
        _, _, image = full_image(run)
        outcome = run_repair(run.repair, image, "epoch")
        assert outcome.injector.persist_count == outcome.persist_count


class TestReplaySchedule:
    def test_empty_schedule_is_the_origin_image(self):
        run = build_run("log")
        _, _, image = full_image(run)
        replayed = replay_schedule(run.repair, image, "epoch", ())
        assert image_bytes(replayed) == image_bytes(image)

    def test_one_level_matches_the_injector(self):
        run = build_run("log-repair-buggy", threads=1, ops=2)
        _, _, image = full_image(run)
        outcome = run_repair(run.repair, image, "epoch")
        cut, crashed = next(outcome.injector.minimal_images())
        members = tuple(sorted(cut))
        replayed = replay_schedule(run.repair, image, "epoch", (members,))
        assert image_bytes(replayed) == image_bytes(crashed)

    def test_stale_schedule_raises(self):
        run = build_run("log")
        _, _, image = full_image(run)
        # A clean image repairs as a no-op: no persists, so any cut is
        # out of range for the rebuilt repair run.
        with pytest.raises(RecoveryError, match="stale crash schedule"):
            replay_schedule(run.repair, image, "epoch", ((0, 1),))


class TestCrashRecoveryCheck:
    @pytest.mark.parametrize("name", CORRECT_REPAIRABLE)
    def test_correct_repairs_are_clean_at_depth_two(self, name):
        run = build_run(name)
        graph, injector, image = full_image(run)

        def invariant(img):
            try:
                run.check(img)
            except RecoveryError as exc:
                return str(exc)
            return None

        report = crash_recovery_check(
            run.repair, image, "epoch", depth=2, check=invariant
        )
        assert report.clean, [v.error for v in report.violations]

    @pytest.mark.parametrize("name", ["queue-2lc", "minifs", "log"])
    def test_clean_at_depth_two_on_minimal_cut_images(self, name):
        run = build_run(name)
        graph, injector, _ = full_image(run)
        cut = minimal_cut(graph, len(graph.nodes) // 2)
        image = injector.image_for(cut)
        report = crash_recovery_check(run.repair, image, "epoch", depth=2)
        assert report.clean, [v.error for v in report.violations]

    def test_buggy_log_repair_breaks_idempotence(self):
        run = build_run("log-repair-buggy", threads=1, ops=2)
        _, _, image = full_image(run)
        report = crash_recovery_check(run.repair, image, "epoch", depth=2)
        oracles = {violation.oracle for violation in report.violations}
        assert "idempotence" in oracles

    def test_violation_schedules_replay_to_judged_images(self):
        run = build_run("log-repair-buggy", threads=1, ops=3)
        _, _, image = full_image(run)
        report = crash_recovery_check(run.repair, image, "epoch", depth=2)
        assert not report.clean
        for violation in report.violations:
            # Every recorded schedule must still materialise.
            replay_schedule(run.repair, image, "epoch", violation.schedule)

    def test_repair_budget_truncates_instead_of_raising(self):
        run = build_run("log-repair-buggy", threads=1, ops=3)
        _, _, image = full_image(run)
        report = crash_recovery_check(
            run.repair, image, "epoch", depth=2, max_repairs=1
        )
        assert report.truncated
        assert report.repairs == 1

    def test_broken_origin_image_never_charges_preservation(self):
        run = build_run("log", threads=1, ops=2)
        _, _, image = full_image(run)
        report = crash_recovery_check(
            run.repair,
            image,
            "epoch",
            depth=1,
            check=lambda img: "origin already broken",
        )
        assert not any(
            violation.oracle == "preservation"
            for violation in report.violations
        )


class TestPreservationOracle:
    """Drive preservation with a hand-built planner: the structure
    targets are correct, so only a deliberately state-damaging repair
    can exercise the oracle's firing path."""

    BASE = 0x8000_0000

    def damaging_planner(self, image):
        # "Repairs" by smashing the first word to 1 whenever it is 0 —
        # never a no-op on a healthy image, and never idempotent-clean
        # because the second pass sees 1 and plans nothing (idempotent!)
        # but the origin invariant (word == 0) is destroyed.
        if image.read(self.BASE, 8) == 0:
            return RepairPlan(
                actions=("smash the first word",),
                phases=((RepairStep(self.BASE, 1),),),
            )
        return RepairPlan()

    def invariant(self, image):
        return None if image.read(self.BASE, 8) == 0 else "first word moved"

    def test_preservation_fires_when_repair_breaks_a_passing_image(self):
        image = NvramImage(self.BASE, 64)
        report = crash_recovery_check(
            self.damaging_planner,
            image,
            "epoch",
            depth=1,
            check=self.invariant,
        )
        oracles = {violation.oracle for violation in report.violations}
        assert oracles == {"preservation"}

    def test_oracle_check_baseline_is_independent_of_invariant(self):
        image = NvramImage(self.BASE, 64)
        report = crash_recovery_check(
            self.damaging_planner,
            image,
            "epoch",
            depth=1,
            check=lambda img: "invariant never passes",
            oracle_check=self.invariant,
        )
        # The invariant baseline failed (never charged), but the oracle
        # baseline passed and the repaired image breaks it.
        errors = [
            violation.error
            for violation in report.violations
            if violation.oracle == "preservation"
        ]
        assert len(errors) == 1
        assert "durability oracle" in errors[0]
