"""End-to-end crash-recovery axis: campaign, minimizer, corpus, CLI.

The acceptance path the ISSUE pins: hardened targets stay clean at
depth 2, the seeded non-idempotent log repair is rediscovered, its
finding minimizes with the crash oracle pinned, and the resulting
corpus entry replays deterministically with the nested-crash schedule
carried in the repro file.
"""

import pytest

from repro.errors import FuzzError
from repro.fuzz.campaign import (
    CampaignConfig,
    CaseSpec,
    _outcome_from_wire,
    _outcome_to_wire,
    run_case,
    run_campaign,
)
from repro.fuzz.corpus import Corpus, ReproCase, replay_case
from repro.fuzz.minimize import minimize_finding


def buggy_config(budget=4, **overrides):
    return CampaignConfig(
        target="log-repair-buggy",
        budget=budget,
        seed=0,
        crash_recovery=2,
        **overrides,
    )


@pytest.fixture(scope="module")
def buggy_result():
    return run_campaign(buggy_config())


@pytest.fixture(scope="module")
def crash_finding(buggy_result):
    findings = [f for f in buggy_result.findings if f.crash is not None]
    assert findings, "seeded buggy repair must surface a crash finding"
    return findings[0]


@pytest.fixture(scope="module")
def minimized(crash_finding):
    return minimize_finding(crash_finding)


class TestCampaignAxis:
    def test_non_repairable_target_is_rejected(self):
        config = CampaignConfig(
            target="publish-pair", budget=1, crash_recovery=1
        )
        with pytest.raises(FuzzError, match="repair"):
            config.validate()

    def test_negative_depth_is_rejected(self):
        config = CampaignConfig(target="log", budget=1, crash_recovery=-1)
        with pytest.raises(FuzzError):
            config.validate()

    def test_buggy_repair_is_rediscovered(self, buggy_result):
        assert buggy_result.crash_violations > 0
        assert buggy_result.crash_counts.get("idempotence", 0) > 0
        assert buggy_result.crash_repairs > 0

    def test_summary_reports_the_crash_axis(self, buggy_result):
        summary = buggy_result.summary()
        assert "crash-recovery depth=2" in summary
        assert "breaks idempotence" in summary

    def test_invariant_mode_summary_has_no_crash_lines(self):
        result = run_campaign(
            CampaignConfig(target="log", budget=2, seed=0)
        )
        assert "crash-recovery" not in result.summary()

    def test_hardened_queue_is_clean_at_depth_two(self):
        result = run_campaign(
            CampaignConfig(
                target="queue-2lc-faithful",
                budget=3,
                seed=0,
                crash_recovery=2,
            )
        )
        assert result.crash_violations == 0

    def test_outcome_wire_round_trips_crash_fields(self, buggy_result):
        outcome = next(
            o for o in buggy_result.outcomes if o.crash_counts
        )
        rebuilt = _outcome_from_wire(_outcome_to_wire(outcome))
        assert rebuilt.crash_repairs == outcome.crash_repairs
        assert rebuilt.crash_nested_cuts == outcome.crash_nested_cuts
        assert rebuilt.crash_counts == outcome.crash_counts
        assert [v.crash for v in rebuilt.violations] == [
            v.crash for v in outcome.violations
        ]
        assert [v.crash_schedule for v in rebuilt.violations] == [
            v.crash_schedule for v in outcome.violations
        ]

    def test_run_case_rejects_non_repairable_spec(self):
        spec = CaseSpec(
            target="publish-pair",
            threads=2,
            ops=1,
            sched="random",
            sched_seed=0,
            model="epoch",
            cuts="sample",
            cut_seed=0,
            cut_samples=4,
            crash_recovery=1,
        )
        with pytest.raises(FuzzError, match="repair"):
            run_case(spec)


class TestMinimizeAndCorpus:
    def test_minimized_case_pins_the_crash_oracle(
        self, crash_finding, minimized
    ):
        case = minimized.case
        assert case.crash == crash_finding.crash
        assert case.crash_recovery == crash_finding.spec.crash_recovery
        assert case.minimized
        # Shrunk at least down the cut family, typically the workload.
        assert case.threads <= crash_finding.spec.threads
        assert case.ops <= crash_finding.spec.ops

    def test_corpus_round_trip_preserves_crash_fields(
        self, minimized, tmp_path
    ):
        corpus = Corpus(tmp_path)
        path = corpus.add(minimized.case)
        loaded = corpus.load(path)
        assert loaded == minimized.case

    def test_minimized_case_replays(self, minimized):
        replay = replay_case(minimized.case)
        assert replay.reproduced, replay.detail
        assert minimized.case.crash in ("idempotence", "convergence")

    def test_replay_is_stale_when_repair_disappears(self, minimized):
        # Same violation retargeted at a structure with no repair
        # procedure: replay must degrade to a stale diagnosis.
        case = ReproCase(
            target="publish-pair",
            threads=2,
            ops=1,
            sched="random",
            sched_seed=0,
            model="epoch",
            cut=(),
            choices=(),
            error="x",
            crash="idempotence",
            crash_recovery=1,
        )
        replay = replay_case(case)
        assert not replay.reproduced
        assert "repair" in replay.detail

    def test_pre_crash_payloads_still_load(self, minimized):
        payload = minimized.case.describe()
        for key in ("crash", "crash_schedule", "crash_recovery"):
            del payload[key]
        loaded = ReproCase.from_payload(payload)
        assert loaded.crash is None
        assert loaded.crash_schedule is None
        assert loaded.crash_recovery == 0
