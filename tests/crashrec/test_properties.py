"""Hypothesis properties for the repair contract.

Two universally-quantified guarantees the ISSUE's repair discipline
rests on:

* repair on a clean, fully-synced image (every persist applied) is a
  byte-level no-op for every structure, and
* crash-free ``repair ∘ recover`` round-trips ground truth on random
  failure cuts: wherever the structure's recovery invariant holds on
  the raw crash image it still holds after repair, and a second repair
  pass plans nothing.

Workloads are tiny (hypothesis shrinks toward them anyway) so each
example stays in the tens of milliseconds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import analyze_graph
from repro.core.recovery import FailureInjector, full_cut
from repro.crashrec import run_repair
from repro.errors import RecoveryError
from repro.fuzz.targets import TARGETS, make_target
from repro.sim.scheduler import make_scheduler

CORRECT_REPAIRABLE = sorted(
    name
    for name, target in TARGETS.items()
    if target.repairable and name != "log-repair-buggy"
)

targets_strategy = st.sampled_from(CORRECT_REPAIRABLE)
models_strategy = st.sampled_from(["epoch", "strand"])


def build_run(name, threads, ops, seed):
    target = make_target(name)
    lo, hi = target.thread_range
    threads = min(max(threads, lo), hi)
    lo, hi = target.ops_range
    ops = min(max(ops, lo), hi)
    return target.build(threads, ops, make_scheduler("random", seed))


def image_bytes(image):
    return image.read_bytes(image.base, image.size)


class TestRepairProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        name=targets_strategy,
        threads=st.integers(min_value=1, max_value=2),
        ops=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**16),
        model=models_strategy,
    )
    def test_repair_on_fully_synced_image_is_byte_noop(
        self, name, threads, ops, seed, model
    ):
        run = build_run(name, threads, ops, seed)
        graph = analyze_graph(run.trace, model).graph
        injector = FailureInjector(graph, run.base_image)
        image = injector.image_for(full_cut(graph))
        outcome = run_repair(run.repair, image, model)
        assert outcome.plan.is_noop
        assert image_bytes(outcome.image) == image_bytes(image)

    @settings(max_examples=15, deadline=None)
    @given(
        name=targets_strategy,
        threads=st.integers(min_value=1, max_value=2),
        ops=st.integers(min_value=1, max_value=3),
        seed=st.integers(min_value=0, max_value=2**16),
        cut_seed=st.integers(min_value=0, max_value=2**16),
        model=models_strategy,
    )
    def test_crash_free_repair_round_trips_ground_truth(
        self, name, threads, ops, seed, cut_seed, model
    ):
        run = build_run(name, threads, ops, seed)
        graph = analyze_graph(run.trace, model).graph
        injector = FailureInjector(graph, run.base_image)
        for _, image in injector.random_images(3, seed=cut_seed):
            try:
                run.check(image)
            except RecoveryError:
                # The crash image itself violates (expected on racy /
                # paper-faithful targets): repair owes nothing here.
                continue
            outcome = run_repair(run.repair, image, model)
            # Recovery ground truth survives repair...
            run.check(outcome.image)
            # ...and the repaired image is a fixed point.
            second = run_repair(run.repair, outcome.image, model)
            assert second.plan.is_noop
            assert image_bytes(second.image) == image_bytes(outcome.image)
