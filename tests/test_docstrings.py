"""Documentation quality gate: every public item carries a docstring.

The deliverable requires doc comments on every public item; this test
makes the requirement executable by walking the installed package.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def iter_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def public_members(module):
    for name, member in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(member) or inspect.isfunction(member)):
            continue
        if getattr(member, "__module__", None) != module.__name__:
            continue  # re-export; documented at its home
        yield name, member


MODULES = list(iter_modules())


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


def _documented(func) -> bool:
    return bool(func.__doc__ and func.__doc__.strip())


def _documented_somewhere(cls, method_name) -> bool:
    """The method or the base-class contract it overrides is documented."""
    for base in cls.__mro__:
        method = vars(base).get(method_name)
        if method is not None and _documented(method):
            return True
    return False


@pytest.mark.parametrize(
    "module", MODULES, ids=[module.__name__ for module in MODULES]
)
def test_public_classes_and_functions_documented(module):
    undocumented = []
    for name, member in public_members(module):
        if not _documented(member):
            undocumented.append(name)
        if inspect.isclass(member):
            for method_name, method in vars(member).items():
                if method_name.startswith("_"):
                    continue
                if not inspect.isfunction(method):
                    continue
                if not _documented_somewhere(member, method_name):
                    undocumented.append(f"{name}.{method_name}")
    assert not undocumented, (
        f"{module.__name__}: missing docstrings on {undocumented}"
    )
