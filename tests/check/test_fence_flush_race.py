"""DPOR soundness regression: a fence that emits a buffered flush races
remote stores to the flushed line.

``store x; clflushopt y; mfence`` on one thread versus a plain
``store y`` on the other: when the drain agent has already made the
store to x visible, the mfence step itself emits the buffered
clflushopt — a *read* of line y whose position relative to the other
thread's store decides which persist of y the flush covers under Px86.
The pre-fix footprints claimed only the buffered *stores* for a fence
(a buffer holding just the flush entry made the fence fully local), so
DPOR never branched on this race and silently dropped interleavings.
Here reduced exploration must reproduce the unreduced run's full set of
per-model persist-DAG classes.
"""

from repro.check import Engine, canonical_dag_key
from repro.core.analysis import analyze_graph
from repro.sim import Machine

MODELS = ("px86", "dpox86", "epoch")


def build(scheduler):
    machine = Machine(scheduler=scheduler, consistency="tso")
    x = machine.persistent_heap.malloc(64)
    y = machine.persistent_heap.malloc(64)
    z = machine.persistent_heap.malloc(64)

    def flusher(ctx):
        # The post-fence store to z makes the flush's coverage of y
        # observable: when the emitted clflushopt lands after the
        # writer's store to y, the persist of z implies the persist of
        # y (an extra DAG edge); when it lands before, it does not.
        yield from ctx.store(x, 1)
        yield from ctx.clflushopt(y)
        yield from ctx.fence()
        yield from ctx.store(z, 1)

    def writer(ctx):
        yield from ctx.store(y, 1)
        yield from ctx.fence()

    machine.spawn(flusher)
    machine.spawn(writer)
    return machine


def run(scheduler):
    machine = build(scheduler)
    trace = machine.run()
    return trace


def dag_classes(reduction):
    keys = {model: set() for model in MODELS}
    schedules = 0
    for explored in Engine(run, reduction=reduction).explore():
        schedules += 1
        for model in MODELS:
            graph = analyze_graph(explored.result, model).graph
            keys[model].add(canonical_dag_key(graph))
    return keys, schedules


def test_dpor_covers_every_fence_flush_dag_class():
    expected, exhaustive = dag_classes("none")
    reduced, schedules = dag_classes("dpor")
    assert reduced == expected
    assert schedules <= exhaustive
    # The race is real: the flush lands on both sides of the remote
    # store across the explored schedules, so px86 sees >1 DAG class.
    assert len(expected["px86"]) > 1
