"""Tests for prefix-partitioned sharded checking."""

import pytest

from repro.check import (
    CheckConfig,
    ShardMerge,
    check_shard_worker,
    check_target,
    check_target_sharded,
    enumerate_prefixes,
    shard_tasks,
)
from repro.errors import ReproError
from repro.fuzz import make_target

MODELS = ("strict", "epoch", "strand")


class TestEnumeratePrefixes:
    def test_depth_zero_is_the_whole_tree(self):
        fuzz_target = make_target("queue-cwl")
        run = lambda s: fuzz_target.build(2, 1, s)  # noqa: E731
        assert enumerate_prefixes(run, 0) == [()]

    def test_prefix_count_matches_branching(self):
        fuzz_target = make_target("queue-cwl")
        run = lambda s: fuzz_target.build(2, 1, s)  # noqa: E731
        prefixes = enumerate_prefixes(run, 2)
        assert prefixes == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_negative_depth_rejected(self):
        with pytest.raises(ReproError, match="depth"):
            enumerate_prefixes(lambda s: None, -1)


class TestShardedCheck:
    @pytest.mark.parametrize("target", ["queue-cwl"])
    def test_sharded_matches_unsharded(self, target):
        """The merged shard result must reach the same verdict and the
        same distinct violation set as single-process checking, while
        covering at least as many schedules (shards cannot share sleep
        sets across the prefix boundary)."""
        config = CheckConfig(models=MODELS, max_schedules=None)
        solo = check_target(target, 2, 1, config)
        merged, reports = check_target_sharded(
            target, 2, 1, config, jobs=2, shard_depth=2
        )
        assert set(merged.distinct) == set(solo.distinct)
        assert merged.stats.schedules >= solo.stats.schedules
        assert len(reports) == 4
        assert [report.prefix for report in reports] == sorted(
            report.prefix for report in reports
        )
        assert sum(report.stats["schedules"] for report in reports) == (
            merged.stats.schedules
        )

    def test_worker_reports_overrun_in_band(self):
        """A shard that blows its schedule budget must come back as an
        error payload, not a crashed worker."""
        payload = check_shard_worker(
            {
                "target": "queue-cwl",
                "threads": 2,
                "ops": 1,
                "models": list(MODELS),
                "prefix": [0, 0],
                "max_schedules": 1,
                "max_cuts": 4096,
                "stop_at_first": False,
            }
        )
        assert payload["error"] is not None
        assert "interleavings" in payload["error"]

    def test_failed_shard_fails_the_merge(self):
        config = CheckConfig(models=MODELS, max_schedules=1)
        with pytest.raises(ReproError, match="shard"):
            check_target_sharded(
                "queue-cwl", 2, 1, config, jobs=2, shard_depth=2
            )


class TestShardTasks:
    def test_one_task_per_prefix_with_config_bounds(self):
        config = CheckConfig(
            models=MODELS, max_schedules=500, max_cuts_per_graph=128
        )
        tasks = shard_tasks("queue-cwl", 2, 1, config, shard_depth=2)
        assert [tuple(task["prefix"]) for task in tasks] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]
        for task in tasks:
            assert task["target"] == "queue-cwl"
            assert task["models"] == list(MODELS)
            assert task["max_schedules"] == 500
            assert task["max_cuts"] == 128
            assert task["oracle"] == "invariant"


class TestShardMerge:
    """The merge accumulator, driven directly with wire payloads."""

    def _good_payload(self, prefix):
        return check_shard_worker(
            {
                "target": "queue-cwl",
                "threads": 2,
                "ops": 1,
                "models": list(MODELS),
                "prefix": list(prefix),
                "max_schedules": None,
                "max_cuts": 4096,
                "stop_at_first": False,
            }
        )

    def test_overrun_payload_becomes_failure_with_shard_context(self):
        """An in-band overrun report must fail the merge, naming the
        shard's prefix, even when every other shard succeeded."""
        merge = ShardMerge()
        merge.add(self._good_payload((0, 0)))
        overrun = check_shard_worker(
            {
                "target": "queue-cwl",
                "threads": 2,
                "ops": 1,
                "models": list(MODELS),
                "prefix": [0, 1],
                "max_schedules": 1,
                "max_cuts": 4096,
                "stop_at_first": False,
            }
        )
        assert overrun["error"] is not None
        merge.add(overrun)
        assert merge.failures == [f"shard (0, 1): {overrun['error']}"]
        with pytest.raises(ReproError, match=r"1 shard\(s\) failed.*\(0, 1\)"):
            merge.finish()

    def test_out_of_band_failure_recorded(self):
        merge = ShardMerge()
        merge.add_failure({"prefix": [1, 0]}, "worker crashed")
        with pytest.raises(ReproError, match=r"shard \(1, 0\): worker crashed"):
            merge.finish()

    def test_merge_dedupes_and_sums_like_sharded_check(self):
        """Feeding every shard payload through ShardMerge by hand must
        reproduce check_target_sharded exactly: deduped violations,
        summed stats, prefix-sorted reports."""
        config = CheckConfig(models=MODELS, max_schedules=None)
        tasks = shard_tasks("queue-cwl", 2, 1, config, shard_depth=2)
        merge = ShardMerge()
        # Deliberately out of order: finish() must sort the reports.
        for task in reversed(tasks):
            merge.add(check_shard_worker(task))
        result, reports = merge.finish()
        expected, expected_reports = check_target_sharded(
            "queue-cwl", 2, 1, config, jobs=1, shard_depth=2
        )
        assert set(result.distinct) == set(expected.distinct)
        assert result.stats.describe() == expected.stats.describe()
        assert [r.prefix for r in reports] == [
            r.prefix for r in expected_reports
        ]
        assert sum(r.violations for r in reports) == sum(
            r.violations for r in expected_reports
        )
