"""Tests for prefix-partitioned sharded checking."""

import pytest

from repro.check import (
    CheckConfig,
    check_shard_worker,
    check_target,
    check_target_sharded,
    enumerate_prefixes,
)
from repro.errors import ReproError
from repro.fuzz import make_target

MODELS = ("strict", "epoch", "strand")


class TestEnumeratePrefixes:
    def test_depth_zero_is_the_whole_tree(self):
        fuzz_target = make_target("queue-cwl")
        run = lambda s: fuzz_target.build(2, 1, s)  # noqa: E731
        assert enumerate_prefixes(run, 0) == [()]

    def test_prefix_count_matches_branching(self):
        fuzz_target = make_target("queue-cwl")
        run = lambda s: fuzz_target.build(2, 1, s)  # noqa: E731
        prefixes = enumerate_prefixes(run, 2)
        assert prefixes == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_negative_depth_rejected(self):
        with pytest.raises(ReproError, match="depth"):
            enumerate_prefixes(lambda s: None, -1)


class TestShardedCheck:
    @pytest.mark.parametrize("target", ["queue-cwl"])
    def test_sharded_matches_unsharded(self, target):
        """The merged shard result must reach the same verdict and the
        same distinct violation set as single-process checking, while
        covering at least as many schedules (shards cannot share sleep
        sets across the prefix boundary)."""
        config = CheckConfig(models=MODELS, max_schedules=None)
        solo = check_target(target, 2, 1, config)
        merged, reports = check_target_sharded(
            target, 2, 1, config, jobs=2, shard_depth=2
        )
        assert set(merged.distinct) == set(solo.distinct)
        assert merged.stats.schedules >= solo.stats.schedules
        assert len(reports) == 4
        assert [report.prefix for report in reports] == sorted(
            report.prefix for report in reports
        )
        assert sum(report.stats["schedules"] for report in reports) == (
            merged.stats.schedules
        )

    def test_worker_reports_overrun_in_band(self):
        """A shard that blows its schedule budget must come back as an
        error payload, not a crashed worker."""
        payload = check_shard_worker(
            {
                "target": "queue-cwl",
                "threads": 2,
                "ops": 1,
                "models": list(MODELS),
                "prefix": [0, 0],
                "max_schedules": 1,
                "max_cuts": 4096,
                "stop_at_first": False,
            }
        )
        assert payload["error"] is not None
        assert "interleavings" in payload["error"]

    def test_failed_shard_fails_the_merge(self):
        config = CheckConfig(models=MODELS, max_schedules=1)
        with pytest.raises(ReproError, match="shard"):
            check_target_sharded(
                "queue-cwl", 2, 1, config, jobs=2, shard_depth=2
            )
