"""Tests for the DPOR exploration engine itself.

The class counts asserted here are computable by hand: two threads of
``k`` fully independent steps form one Mazurkiewicz class; two threads
of ``k`` fully conflicting steps form ``C(2k, k)`` classes (one per
order of the conflicting stores) — the same count as the unreduced
interleavings, since nothing commutes.
"""

import math

import pytest

from repro.check import Engine, ExplorationLimitError
from repro.errors import ReproError

from tests.check.helpers import (
    conflicting_factory,
    disjoint_factory,
    publish_pair_factory,
    run_of,
)


def explore_all(build, **kwargs):
    """Run an engine to exhaustion; return (engine, explored runs)."""
    engine = Engine(run_of(build), **kwargs)
    return engine, list(engine.explore())


class TestReductionNone:
    @pytest.mark.parametrize("ops", [1, 2, 3])
    def test_visits_every_interleaving(self, ops):
        """Each thread takes ops+1 scheduler steps, so the unreduced
        tree has C(2(ops+1), ops+1) complete schedules."""
        steps = ops + 1
        engine, runs = explore_all(disjoint_factory(ops), reduction="none")
        assert len(runs) == math.comb(2 * steps, steps)
        assert engine.stats.schedules == len(runs)
        assert engine.stats.sleep_blocked == 0

    def test_choices_are_distinct_and_replayable(self):
        engine, runs = explore_all(disjoint_factory(2), reduction="none")
        choices = {run.choices for run in runs}
        assert len(choices) == len(runs)
        assert all(run.index == i for i, run in enumerate(runs))

    def test_limit_raises_with_frontier_position(self):
        engine = Engine(
            run_of(disjoint_factory(3)), reduction="none", max_schedules=10
        )
        with pytest.raises(ExplorationLimitError) as excinfo:
            list(engine.explore())
        err = excinfo.value
        assert len(err.deepest_prefix) == err.max_depth > 0
        assert err.branching_max == 2
        assert err.nodes > 0


class TestReductionDpor:
    @pytest.mark.parametrize("ops", [1, 2, 3])
    def test_independent_threads_collapse_to_one_class(self, ops):
        engine, runs = explore_all(disjoint_factory(ops))
        assert len(runs) == 1
        # The engine never even found a race to backtrack on.
        assert engine.stats.races_detected == 0

    @pytest.mark.parametrize("ops", [1, 2])
    def test_conflicting_threads_keep_every_class(self, ops):
        """THREAD_BEGIN/END bookkeeping steps are independent, so the
        class count is the orders of the 2*ops conflicting stores."""
        engine, runs = explore_all(conflicting_factory(ops))
        assert len(runs) == math.comb(2 * ops, ops)

    def test_executions_bounded_by_unreduced_tree(self):
        """Sleep-blocked aborts never push total work past exhaustive."""
        engine, runs = explore_all(conflicting_factory(2))
        exhaustive = math.comb(6, 3)
        assert engine.stats.executions <= exhaustive
        assert engine.stats.executions == len(runs) + engine.stats.sleep_blocked

    def test_wakeup_race_still_explored(self):
        """The publish pair's second thread is WAITING until the flag
        store; its pending read must still race with that store, or the
        reduced exploration would miss schedules."""
        engine, runs = explore_all(publish_pair_factory(with_barrier=False))
        assert engine.stats.races_detected > 0
        none_engine, none_runs = explore_all(
            publish_pair_factory(with_barrier=False), reduction="none"
        )
        assert 1 <= len(runs) <= len(none_runs)

    def test_limit_applies_to_complete_schedules(self):
        engine = Engine(run_of(conflicting_factory(2)), max_schedules=3)
        with pytest.raises(ExplorationLimitError):
            list(engine.explore())


class TestEngineValidation:
    def test_unknown_reduction_rejected(self):
        with pytest.raises(ReproError, match="reduction"):
            Engine(run_of(disjoint_factory(1)), reduction="bogus")

    def test_stats_describe_is_json_safe(self):
        engine, _ = explore_all(disjoint_factory(1))
        payload = engine.stats.describe()
        assert payload["schedules"] == 1
        assert all(isinstance(v, int) for v in payload.values())


class TestForcedPrefix:
    def test_prefixes_partition_the_tree(self):
        """The subtrees under every depth-2 prefix tile the unreduced
        tree exactly: schedule counts sum and choice sets are disjoint."""
        from repro.check import enumerate_prefixes

        build = disjoint_factory(2)
        prefixes = enumerate_prefixes(run_of(build), 2)
        assert prefixes == [(0, 0), (0, 1), (1, 0), (1, 1)]
        total = 0
        seen = set()
        for prefix in prefixes:
            engine = Engine(
                run_of(build), reduction="none", forced_prefix=prefix
            )
            for explored in engine.explore():
                assert explored.choices[: len(prefix)] == prefix
                assert explored.choices not in seen
                seen.add(explored.choices)
                total += 1
        assert total == math.comb(6, 3)
