"""Engine-equivalence tests (the checker's correctness contract).

For each small program, two independent pipelines must agree exactly:

* **reference**: unreduced enumeration (every interleaving via the
  engine's ``reduction="none"`` mode, which the legacy
  ``explore_schedules`` shim also runs on), every model's persist DAG,
  every cut imaged and checked — no deduplication anywhere;
* **checker**: DPOR + canonical-DAG dedup + cut-content memoization.

Agreement is on the schedule-independent violation identity
``(model, dag_key, cut_key, error)``.  The checker must also do
strictly less work than the reference on reducible programs, and must
rediscover the documented ``queue-2lc-faithful`` recovery hole.
"""

import pytest

from repro.check import (
    CheckConfig,
    Engine,
    canonical_dag_key,
    check_build,
    check_target,
)
from repro.core.analysis import analyze_graph
from repro.core.recovery import (
    cut_content_key,
    enumerate_cuts,
    image_at_cut,
    minimal_cut,
)
from repro.errors import RecoveryError
from repro.fuzz import make_target
from repro.memory import NvramImage

from tests.check.helpers import (
    check_publication,
    publish_pair_factory,
    run_of,
)

MODELS = ("strict", "epoch", "strand")
MAX_CUTS = 4_096


def reference_cuts(graph):
    """The cut family the checker uses: exhaustive, or minimal cuts per
    persist when enumeration overruns (mirrors ``_cuts_for``)."""
    try:
        return list(enumerate_cuts(graph, limit=MAX_CUTS))
    except RecoveryError:
        return [minimal_cut(graph, pid) for pid in range(len(graph.nodes))]


def reference_keys(run, base_of, checker_of, models=MODELS, prefix=()):
    """Violation keys from unreduced enumeration with zero dedup."""
    engine = Engine(run, reduction="none", forced_prefix=prefix)
    keys = set()
    schedules = 0
    for explored in engine.explore():
        schedules += 1
        trace = getattr(explored.result, "trace", None)
        if trace is None:
            trace = explored.result[0]
        base = base_of(explored.result)
        check = checker_of(explored.result)
        for model in models:
            graph = analyze_graph(trace, model).graph
            dag_key = canonical_dag_key(graph)
            for cut in reference_cuts(graph):
                image = image_at_cut(graph, cut, base, check=False)
                try:
                    check(image)
                except Exception as exc:  # noqa: BLE001 - key material
                    keys.add(
                        (model, dag_key, cut_content_key(graph, cut), str(exc))
                    )
    return keys, schedules


def target_reference_keys(target, threads, ops, prefix=()):
    """Reference violation keys for a registered fuzz target."""
    fuzz_target = make_target(target)
    return reference_keys(
        lambda scheduler: fuzz_target.build(threads, ops, scheduler),
        base_of=lambda run: run.base_image,
        checker_of=lambda run: run.check,
        prefix=prefix,
    )


class TestPublishPair:
    @pytest.mark.parametrize("with_barrier", [True, False])
    def test_identical_violation_sets(self, with_barrier):
        build = publish_pair_factory(with_barrier)

        def base_of(result):
            machine = result[1]
            region = machine.memory.region("persistent")
            return NvramImage.from_region(region, blank=True)

        def checker_of(result):
            return lambda image: check_publication(image, result[1])

        expected, exhaustive_schedules = reference_keys(
            run_of(build), base_of, checker_of
        )
        result = check_build(
            build, check_publication, CheckConfig(models=MODELS)
        )
        assert set(result.distinct) == expected
        assert result.stats.schedules <= exhaustive_schedules
        if not with_barrier:
            # A writer-side barrier alone cannot order the *other*
            # thread's publication persist, so neither variant is clean
            # under the relaxed models; what both pipelines must agree
            # on — asserted above — is the exact violation set.
            assert not result.ok
            models = {key[0] for key in result.distinct}
            assert "epoch" in models and "strand" in models
            assert "strict" not in models


class TestQueueCwl:
    """CWL insert×insert: the whole DPOR exploration is 28 schedules,
    but the *unreduced* tree is astronomically larger (branching 2 over
    ~50 decision points), so the exhaustive reference runs on deep
    subtrees — exhaustive-vs-DPOR on the same subprogram, with the
    prefix-partition property covered by the engine tests."""

    def test_full_reduced_check_is_clean(self):
        result = check_target(
            "queue-cwl", 2, 1, CheckConfig(models=MODELS, max_schedules=None)
        )
        assert result.ok
        assert result.stats.schedules == 28  # pinned: deterministic DFS

    def test_subtree_violation_sets_identical(self):
        fuzz_target = make_target("queue-cwl")
        run = lambda s: fuzz_target.build(2, 1, s)  # noqa: E731
        engine = Engine(run)
        sample = next(engine.explore())
        prefix = sample.choices[: len(sample.choices) - 8]
        expected, exhaustive_schedules = target_reference_keys(
            "queue-cwl", 2, 1, prefix=prefix
        )
        result = check_target(
            "queue-cwl",
            2,
            1,
            CheckConfig(
                models=MODELS, max_schedules=None, forced_prefix=prefix
            ),
        )
        assert set(result.distinct) == expected == set()
        assert result.stats.schedules <= exhaustive_schedules


class Test2lcFaithful:
    """2LC insert×insert against the paper-faithful (broken) queue."""

    @pytest.fixture(scope="class")
    def first_violation(self):
        """The checker's first counterexample (fast: stops early)."""
        result = check_target(
            "queue-2lc-faithful",
            2,
            1,
            CheckConfig(models=MODELS, max_schedules=None, stop_at_first=True),
        )
        assert not result.ok
        return result.violations[0]

    def test_rediscovers_documented_bug(self, first_violation):
        """The printed 2LC's missing barrier surfaces as a corrupt
        entry under a relaxed model — never under strict."""
        assert first_violation.model in ("epoch", "strand")
        assert "entry" in first_violation.error

    def test_subtree_violation_sets_identical(self, first_violation):
        """Around the violating schedule, exhaustive enumeration and
        DPOR+dedup must report the identical violation set — and both
        must see the bug under epoch and strand but not strict."""
        prefix = first_violation.choices[: len(first_violation.choices) - 8]
        expected, exhaustive_schedules = target_reference_keys(
            "queue-2lc-faithful", 2, 1, prefix=prefix
        )
        result = check_target(
            "queue-2lc-faithful",
            2,
            1,
            CheckConfig(
                models=MODELS, max_schedules=None, forced_prefix=prefix
            ),
        )
        assert set(result.distinct) == expected != set()
        assert result.stats.schedules <= exhaustive_schedules
        models = {key[0] for key in result.distinct}
        assert models <= {"epoch", "strand"} and models
        assert "strict" not in models

    def test_fixed_2lc_subtree_is_clean(self, first_violation):
        """The same subtree against the *fixed* 2LC must verify clean:
        the added barrier, not schedule luck, removes the violations."""
        prefix = first_violation.choices[: len(first_violation.choices) - 8]
        expected, _ = target_reference_keys("queue-2lc", 2, 1, prefix=prefix)
        result = check_target(
            "queue-2lc",
            2,
            1,
            CheckConfig(
                models=MODELS, max_schedules=None, forced_prefix=prefix
            ),
        )
        assert set(result.distinct) == expected == set()


class TestDeduplicationAccounting:
    def test_dedup_saves_work_without_losing_violations(self):
        """On the broken publish pair the checker must both (a) find the
        violations and (b) demonstrably skip repeated DAGs or images."""
        result = check_build(
            publish_pair_factory(with_barrier=False),
            check_publication,
            CheckConfig(models=MODELS),
        )
        assert not result.ok
        stats = result.stats
        assert stats.dags_analyzed == stats.schedules * len(MODELS)
        saved = stats.dags_deduped + stats.cut_memo_hits
        assert saved > 0
        assert stats.cuts_imaged + stats.cut_memo_hits == stats.cuts_checked
