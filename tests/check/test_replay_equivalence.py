"""Prefix-sharing replay vs. from-scratch re-execution: exact agreement.

Snapshot/restore is only admissible because it is *invisible*: the
engine must visit the same schedules, analyze the same DAGs, check the
same cuts, and report the identical violation set whether it restores
the deepest common prefix or re-executes every schedule from step 0.
These tests pin that on the issue's three equivalence targets —
publish-pair, CWL, and the paper-faithful 2LC queue (via the repo's
usual violating-subtree idiom to keep the 2LC tree small) — and across
the analysis domains.
"""

import pytest

from repro.check import CheckConfig, check_target

MODELS = ("strict", "epoch", "strand")


def run_modes(target, threads, ops, **overrides):
    """The same check under every replay mode (plus the oracle domain)."""
    results = {}
    for replay in ("share", "reexecute"):
        config = CheckConfig(
            models=MODELS, max_schedules=None, replay=replay, **overrides
        )
        results[replay] = check_target(target, threads, ops, config)
    results["oracle"] = check_target(
        target,
        threads,
        ops,
        CheckConfig(
            models=MODELS,
            max_schedules=None,
            replay="reexecute",
            graph_domain="graph",
            **overrides,
        ),
    )
    return results


def assert_identical(results):
    """Same violations, same work counters, across all modes."""
    baseline = results["reexecute"]
    for result in results.values():
        assert sorted(result.distinct) == sorted(baseline.distinct)
        assert result.stats.describe() == baseline.stats.describe()
        for key, violation in result.distinct.items():
            assert violation.describe() == baseline.distinct[key].describe()
    return baseline


def test_publish_pair_identical():
    baseline = assert_identical(run_modes("publish-pair", 2, 2))
    # The missing barrier must surface under the relaxed models only.
    models = {key[0] for key in baseline.distinct}
    assert models == {"epoch", "strand"}


def test_queue_cwl_identical_and_clean():
    baseline = assert_identical(run_modes("queue-cwl", 2, 1))
    assert baseline.ok
    assert baseline.stats.schedules > 1


def test_queue_2lc_faithful_identical_on_violating_subtree():
    first = check_target(
        "queue-2lc-faithful",
        2,
        1,
        CheckConfig(models=MODELS, max_schedules=None, stop_at_first=True),
    )
    assert not first.ok
    prefix = first.violations[0].choices[:-8]
    baseline = assert_identical(
        run_modes("queue-2lc-faithful", 2, 1, forced_prefix=tuple(prefix))
    )
    assert not baseline.ok
    models = {key[0] for key in baseline.distinct}
    assert models <= {"epoch", "strand"} and models


def test_flush_target_identical_under_x86_models():
    """Prefix-sharing replay must also be invisible on traces carrying
    the x86 flush family (flush entries drain through the store buffer,
    so restored snapshots must reproduce buffered-flush state exactly).
    The missing commit fence surfaces under px86 but never dpox86."""
    results = {}
    for replay in ("share", "reexecute"):
        results[replay] = check_target(
            "publish-clflushopt-nofence",
            1,
            1,
            CheckConfig(
                models=("strict", "px86", "dpox86"),
                max_schedules=None,
                replay=replay,
            ),
        )
    results["oracle"] = check_target(
        "publish-clflushopt-nofence",
        1,
        1,
        CheckConfig(
            models=("strict", "px86", "dpox86"),
            max_schedules=None,
            replay="reexecute",
            graph_domain="graph",
        ),
    )
    baseline = assert_identical(results)
    assert not baseline.ok
    models = {key[0] for key in baseline.distinct}
    assert models == {"px86"}


def test_clwb_target_clean_under_x86_models():
    """The fenced clwb publish is clean under the whole x86 family —
    in both replay modes."""
    for replay in ("share", "reexecute"):
        result = check_target(
            "publish-clwb",
            1,
            1,
            CheckConfig(
                models=("strict", "px86", "dpox86"),
                max_schedules=None,
                replay=replay,
            ),
        )
        assert result.ok


def test_share_is_default_for_targets():
    """With no explicit replay, target programs get prefix sharing —
    and still match an explicit re-execution run."""
    default = check_target(
        "publish-pair", 2, 1, CheckConfig(models=MODELS, max_schedules=None)
    )
    explicit = check_target(
        "publish-pair",
        2,
        1,
        CheckConfig(models=MODELS, max_schedules=None, replay="reexecute"),
    )
    assert sorted(default.distinct) == sorted(explicit.distinct)
    assert default.stats.describe() == explicit.stats.describe()
