"""Shared program factories for the checker tests.

Small two-thread machines with tunable conflict structure: the DPOR
tests need programs whose Mazurkiewicz class counts are computable by
hand, and the equivalence tests need the publish idiom from the verify
suite rebuilt behind a ``run(scheduler)`` adapter.
"""

from repro.errors import RecoveryError
from repro.memory import NvramImage
from repro.sim import Machine


def disjoint_factory(ops_per_thread):
    """Two threads, each storing ``ops_per_thread`` times to its own
    volatile cell — every pair of cross-thread steps is independent."""

    def build(scheduler):
        machine = Machine(scheduler=scheduler)
        cells = [machine.volatile_heap.malloc(8) for _ in range(2)]

        def body(ctx, cell):
            for i in range(ops_per_thread):
                yield from ctx.store(cell, i + 1)

        for cell in cells:
            machine.spawn(body, cell)
        return machine

    return build


def conflicting_factory(ops_per_thread):
    """Two threads hammering the *same* volatile cell — every pair of
    cross-thread steps conflicts, so no reduction is possible."""

    def build(scheduler):
        machine = Machine(scheduler=scheduler)
        cell = machine.volatile_heap.malloc(8)

        def body(ctx, value):
            for i in range(ops_per_thread):
                yield from ctx.store(cell, value * 100 + i + 1)

        machine.spawn(body, 1)
        machine.spawn(body, 2)
        return machine

    return build


def publish_pair_factory(with_barrier):
    """Cross-thread publish idiom: t0 writes a two-word record then a
    volatile ready flag; t1 waits on the flag and publishes durably."""

    def build(scheduler):
        machine = Machine(scheduler=scheduler)
        base = machine.persistent_heap.malloc(64)
        ready = machine.volatile_heap.malloc(8)
        machine.memory.write(ready, 8, 0)
        machine.record_base = base

        def writer(ctx):
            yield from ctx.store(base, 0xAAAA)
            yield from ctx.store(base + 8, 0xBBBB)
            if with_barrier:
                yield from ctx.persist_barrier()
            yield from ctx.store(ready, 1)

        def publisher(ctx):
            yield from ctx.wait_equals(ready, 1)
            yield from ctx.store(base + 16, 1)

        machine.spawn(writer)
        machine.spawn(publisher)
        return machine

    return build


def check_publication(image: NvramImage, machine: Machine) -> None:
    """Recovery invariant: a published record must not be torn."""
    base = machine.record_base
    if image.read(base + 16, 8) == 1:
        if image.read(base, 8) != 0xAAAA or image.read(base + 8, 8) != 0xBBBB:
            raise RecoveryError("published record is torn")


def run_of(build):
    """Adapt a machine factory to the engine's ``run(scheduler)`` shape."""

    def run(scheduler):
        machine = build(scheduler)
        trace = machine.run()
        return trace, machine

    return run
