"""Tests for the DPOR model checker (`repro.check`)."""
