"""Tests for canonical persist-DAG hashing.

The load-bearing property: Mazurkiewicz-equivalent interleavings get
*equal* keys (so the checker's dedup collapses them), while programs
that write or order persistent memory differently get distinct keys.
"""

from repro.check import Engine, canonical_dag_key, canonical_ids
from repro.core.analysis import analyze_graph
from repro.sim import Machine

from tests.check.helpers import run_of


def two_writer_factory(values):
    """Two threads, each persisting one word to its own address."""

    def build(scheduler):
        machine = Machine(scheduler=scheduler)
        base = machine.persistent_heap.malloc(64)

        def body(ctx, offset, value):
            yield from ctx.store(base + offset, value)

        machine.spawn(body, 0, values[0])
        machine.spawn(body, 8, values[1])
        return machine

    return build


def keys_across_schedules(build, model):
    """The canonical key of every interleaving's persist DAG."""
    engine = Engine(run_of(build), reduction="none")
    return [
        canonical_dag_key(analyze_graph(explored.result[0], model).graph)
        for explored in engine.explore()
    ]


class TestCanonicalIds:
    def test_names_are_thread_local_positions(self):
        engine = Engine(run_of(two_writer_factory((1, 2))), reduction="none")
        explored = next(engine.explore())
        graph = analyze_graph(explored.result[0], "epoch").graph
        names = canonical_ids(graph)
        assert len(names) == len(graph.nodes)
        assert sorted(names.values()) == [(0, 0), (1, 0)]


class TestCanonicalDagKey:
    def test_equivalent_interleavings_collide(self):
        """Independent writers: every interleaving is equivalent, so all
        schedules must hash to one canonical key under every model."""
        for model in ("strict", "epoch", "strand"):
            keys = keys_across_schedules(two_writer_factory((1, 2)), model)
            assert len(keys) > 1  # multiple interleavings were explored
            assert len(set(keys)) == 1, model

    def test_different_writes_do_not_collide(self):
        one = keys_across_schedules(two_writer_factory((1, 2)), "epoch")
        other = keys_across_schedules(two_writer_factory((1, 3)), "epoch")
        assert set(one).isdisjoint(set(other))

    def test_different_order_does_not_collide(self):
        """A barrier between two same-thread persists changes the DAG's
        edges (not its writes) — the key must see the difference."""

        def factory(with_barrier):
            def build(scheduler):
                machine = Machine(scheduler=scheduler)
                base = machine.persistent_heap.malloc(64)

                def body(ctx):
                    yield from ctx.store(base, 1)
                    if with_barrier:
                        yield from ctx.persist_barrier()
                    yield from ctx.store(base + 8, 2)

                machine.spawn(body)
                return machine

            return build

        ordered = keys_across_schedules(factory(True), "epoch")
        unordered = keys_across_schedules(factory(False), "epoch")
        assert set(ordered).isdisjoint(set(unordered))
