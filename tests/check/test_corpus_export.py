"""Checker → fuzz-corpus integration: counterexamples must replay.

A violation found by `repro check` is only useful if the existing
`repro fuzz replay` / `minimize` tooling can consume it, so exports go
through the standard content-addressed corpus and the standard
choice-replay path.
"""

import pytest

from repro.check import CheckConfig, check_target
from repro.fuzz import (
    Corpus,
    case_from_check,
    export_check_violations,
    replay_case,
)

MODELS = ("strict", "epoch", "strand")


@pytest.fixture(scope="module")
def violations():
    """Distinct checker counterexamples for the documented 2LC bug."""
    result = check_target(
        "queue-2lc-faithful",
        2,
        1,
        CheckConfig(models=MODELS, max_schedules=None, stop_at_first=True),
    )
    assert not result.ok
    return list(result.distinct.values())


class TestCaseFromCheck:
    def test_case_carries_the_violation(self, violations):
        violation = violations[0]
        case = case_from_check("queue-2lc-faithful", 2, 1, violation)
        assert case.target == "queue-2lc-faithful"
        assert case.model == violation.model
        assert case.cut == tuple(violation.cut)
        assert case.choices == tuple(violation.choices)
        assert case.error == violation.error
        assert not case.minimized

    def test_case_replays_and_reproduces(self, violations):
        case = case_from_check("queue-2lc-faithful", 2, 1, violations[0])
        replay = replay_case(case)
        assert replay.reproduced

    def test_fixed_target_does_not_reproduce(self, violations):
        """The checker's schedule and cut against the fixed 2LC must
        come back clean or stale — never a (false) reproduction."""
        case = case_from_check("queue-2lc", 2, 1, violations[0])
        assert not replay_case(case).reproduced


class TestExport:
    def test_exports_are_loadable_and_idempotent(self, tmp_path, violations):
        paths = export_check_violations(
            tmp_path, "queue-2lc-faithful", 2, 1, violations
        )
        assert len(paths) == len(violations)
        corpus = Corpus(tmp_path)
        assert sorted(corpus.entries()) == sorted(set(paths))
        again = export_check_violations(
            tmp_path, "queue-2lc-faithful", 2, 1, violations
        )
        assert again == paths
        for path in paths:
            assert corpus.load(path).target == "queue-2lc-faithful"

    def test_exported_corpus_replays(self, tmp_path, violations):
        export_check_violations(
            tmp_path, "queue-2lc-faithful", 2, 1, violations
        )
        results = Corpus(tmp_path).replay_all()
        assert results
        assert all(replay.reproduced for _, replay in results)
