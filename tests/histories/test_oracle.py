"""Tests for the oracle glue between recorded runs and the pipelines."""

import pytest

from repro.core.analysis import analyze_graph
from repro.core.recovery import full_cut, image_at_cut
from repro.errors import FuzzError
from repro.fuzz import make_target
from repro.histories import ORACLES, cut_checker, validate_oracle
from repro.sim import make_scheduler


def recorded(target, threads=1, ops=3, seed=7, model="epoch"):
    """A recorded run plus its persist graph under ``model``."""
    run = make_target(target).build(
        threads, ops, make_scheduler("strided2", seed), record_history=True
    )
    graph = analyze_graph(run.trace, model, domain="graph").graph
    return run, graph


class TestValidation:
    def test_known_oracles_accepted(self):
        for oracle in ORACLES:
            assert validate_oracle(oracle) == oracle

    def test_unknown_oracle_rejected(self):
        with pytest.raises(FuzzError):
            validate_oracle("linearizable")

    def test_invariant_mode_has_no_history_checker(self):
        run, graph = recorded("log")
        with pytest.raises(FuzzError):
            cut_checker(run.trace, graph, run.history_spec, "invariant")

    def test_unrecorded_build_rejected_for_nonrecordable_target(self):
        with pytest.raises(FuzzError, match="does not record"):
            make_target("publish-pair").build(
                2, 2, make_scheduler("strided2", 0), record_history=True
            )

    def test_unrecorded_run_carries_no_history_spec(self):
        run = make_target("log").build(1, 2, make_scheduler("strided2", 0))
        assert run.history_spec is None


class TestFullCutVerdicts:
    @pytest.mark.parametrize("target", ["log", "kv", "counter", "minifs"])
    def test_completed_run_is_durable_at_the_full_cut(self, target):
        """With everything persisted, both conditions hold."""
        run, graph = recorded(target, threads=2, ops=2)
        check = cut_checker(run.trace, graph, run.history_spec, "dl")
        cut = full_cut(graph)
        image = image_at_cut(graph, cut, run.base_image, check=False)
        assert check(cut, image) is None

    def test_observe_matches_adhoc_ground_truth(self):
        """The oracle's observed state agrees with the target checker."""
        run, graph = recorded("log", ops=3)
        cut = full_cut(graph)
        image = image_at_cut(graph, cut, run.base_image, check=False)
        run.check(image)  # ad-hoc invariant holds at the full cut too
        observed = run.history_spec.observe(image)
        assert len(observed) == 3

    def test_bdl_mode_is_weaker_than_dl(self):
        """Any cut the dl oracle passes, the bdl oracle passes too."""
        run, graph = recorded("kv", threads=2, ops=2)
        dl = cut_checker(run.trace, graph, run.history_spec, "dl")
        bdl = cut_checker(run.trace, graph, run.history_spec, "bdl")
        cut = full_cut(graph)
        image = image_at_cut(graph, cut, run.base_image, check=False)
        assert dl(cut, image) is None
        assert bdl(cut, image) is None
