"""Property tests for the DL/BDL oracle.

Two families of properties, both drawn by hypothesis:

* **Crash-free durability** — a single-threaded run checked at the
  *full* cut (everything persisted, nothing lost) is durably
  linearizable for every recordable target, fixed or seeded-broken:
  with no concurrency and no lost persists there is nothing for any
  persistency bug to tear.
* **Oracle vs. ad-hoc agreement** — on sampled failure cuts, a cut the
  target's ad-hoc invariant rejects is never accepted by the dl oracle
  (the ad-hoc predicates check explainability of recovered state, a
  consequence of BDL — so their violations imply condition "dl+bdl"),
  and on fixed targets both stay silent on every sampled cut.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import analyze_graph
from repro.core.recovery import FailureInjector, full_cut, image_at_cut
from repro.errors import RecoveryError
from repro.fuzz import TARGETS, make_target
from repro.histories import cut_checker
from repro.sim import make_scheduler

RECORDABLE = sorted(
    name for name, target in TARGETS.items() if target.recordable
)

#: Recordable targets whose thread floor allows a single-thread run.
SINGLE_THREADED = [
    name for name in RECORDABLE if TARGETS[name].thread_range[0] == 1
]


def recorded(target, threads, ops, seed, model="epoch"):
    """A recorded run plus its persist graph under ``model``."""
    run = make_target(target).build(
        threads, ops, make_scheduler("strided2", seed), record_history=True
    )
    graph = analyze_graph(run.trace, model, domain="graph").graph
    return run, graph


@pytest.mark.parametrize("target", SINGLE_THREADED)
@settings(max_examples=10, deadline=None)
@given(ops=st.integers(2, 4), seed=st.integers(0, 1000))
def test_single_threaded_crash_free_runs_are_dl(target, ops, seed):
    """No concurrency, nothing lost: both conditions hold at full cut."""
    run, graph = recorded(target, 1, ops, seed)
    check = cut_checker(run.trace, graph, run.history_spec, "dl")
    cut = full_cut(graph)
    image = image_at_cut(graph, cut, run.base_image, check=False)
    assert check(cut, image) is None


@pytest.mark.parametrize("target", ["minifs", "minifs-racy"])
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(0, 1000))
def test_thread_floor_crash_free_runs_are_dl(target, seed):
    """MiniFS's floor is two threads; the full cut must still be DL."""
    run, graph = recorded(target, 2, 2, seed)
    check = cut_checker(run.trace, graph, run.history_spec, "dl")
    cut = full_cut(graph)
    image = image_at_cut(graph, cut, run.base_image, check=False)
    assert check(cut, image) is None


def sampled_verdicts(target, seed, model):
    """(ad-hoc violates, oracle verdict) per sampled cut of one run."""
    run, graph = recorded(target, 2, 2, seed, model)
    check = cut_checker(run.trace, graph, run.history_spec, "dl")
    injector = FailureInjector(graph, run.base_image)
    pairs = []
    images = list(injector.minimal_images())
    images.extend(injector.random_images(samples=10, seed=seed))
    for cut, image in images:
        try:
            run.check(image)
            adhoc_fails = False
        except RecoveryError:
            adhoc_fails = True
        pairs.append((adhoc_fails, check(cut, image)))
    return pairs


@settings(max_examples=12, deadline=None)
@given(seed=st.integers(0, 200), model=st.sampled_from(["epoch", "strand"]))
def test_adhoc_violations_imply_oracle_violations(seed, model):
    """On the seeded queue bug, the oracle subsumes the ad-hoc check."""
    for adhoc_fails, failure in sampled_verdicts(
        "queue-2lc-faithful", seed, model
    ):
        if adhoc_fails:
            assert failure is not None
            _, condition = failure
            assert condition == "dl+bdl"


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 200), model=st.sampled_from(["epoch", "strand"]))
def test_fixed_queue_agrees_everywhere(seed, model):
    """On the fixed queue both verdicts are silent on every cut."""
    for adhoc_fails, failure in sampled_verdicts("queue-2lc", seed, model):
        assert not adhoc_fails
        assert failure is None


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 200))
def test_fixed_kv_agrees_everywhere(seed):
    """Same agreement on a non-queue structure (per-key partitions)."""
    for adhoc_fails, failure in sampled_verdicts("kv", seed, "epoch"):
        assert not adhoc_fails
        assert failure is None
