"""Tests for the DL/BDL membership checker on hand-built histories."""

import pytest

from repro.errors import HistoryError
from repro.histories import (
    CounterSpec,
    History,
    KvSpec,
    LogSpec,
    MiniFsSpec,
    Operation,
    QueueSpec,
    Verdict,
    check_history,
)
from repro.histories.spec import ABSENT, REJECT


def op(thread, index, name, args, result, persists=(), complete=True):
    """A hand-built operation; sequence numbers are synthesized."""
    base = 1000 * thread + 10 * index
    return Operation(
        thread=thread,
        index=index,
        name=name,
        args=tuple(args),
        result=result,
        invoke_seq=base,
        response_seq=base + 5 if complete else None,
        persists=tuple(persists),
    )


class TestVerdict:
    def test_condition_mapping(self):
        assert Verdict(dl_ok=True, bdl_ok=True).condition() is None
        assert Verdict(dl_ok=False, bdl_ok=True).condition() == "dl"
        assert Verdict(dl_ok=False, bdl_ok=False).condition() == "dl+bdl"


class TestKvPartitions:
    def test_clean_state_satisfies_both(self):
        history = History(operations=[op(0, 0, "put", ["k", b"v"], None, (1,))])
        verdict = check_history(history, KvSpec(), {"k": b"v"}, frozenset({1}))
        assert verdict.dl_ok and verdict.bdl_ok
        assert verdict.condition() is None

    def test_dropped_persisted_complete_put_is_dl_only(self):
        """Observed ABSENT after a durable put: lost completed work."""
        history = History(operations=[op(0, 0, "put", ["k", b"v"], None, (1,))])
        verdict = check_history(history, KvSpec(), {}, frozenset({1}))
        assert not verdict.dl_ok and verdict.bdl_ok
        assert verdict.condition() == "dl"
        assert "persisted-complete" in verdict.detail

    def test_unpersisted_put_may_be_dropped(self):
        """The same drop is fine while the put's persist is outside the cut."""
        history = History(operations=[op(0, 0, "put", ["k", b"v"], None, (1,))])
        verdict = check_history(history, KvSpec(), {}, frozenset())
        assert verdict.dl_ok and verdict.bdl_ok

    def test_invented_value_breaks_both(self):
        history = History(operations=[op(0, 0, "put", ["k", b"v"], None, (1,))])
        verdict = check_history(
            history, KvSpec(), {"k": b"other"}, frozenset({1})
        )
        assert not verdict.dl_ok and not verdict.bdl_ok
        assert verdict.condition() == "dl+bdl"
        assert "linearization" in verdict.detail

    def test_delete_presence_result_constrains_order(self):
        """A delete that observed absence cannot linearize after the put."""
        history = History(
            operations=[
                op(0, 0, "put", ["k", b"v"], None, (1,)),
                op(1, 0, "delete", ["k"], False, (2,)),
            ]
        )
        # Both durable, observed ABSENT: no linearization of *both*
        # reaches ABSENT (put-then-delete contradicts the delete's
        # recorded "was absent"; delete-then-put ends at the put), so DL
        # fails — while BDL may drop the put and keep the lone delete.
        verdict = check_history(history, KvSpec(), {}, frozenset({1, 2}))
        assert not verdict.dl_ok and verdict.bdl_ok
        # With the delete recording presence the same state is clean.
        history = History(
            operations=[
                op(0, 0, "put", ["k", b"v"], None, (1,)),
                op(1, 0, "delete", ["k"], True, (2,)),
            ]
        )
        verdict = check_history(history, KvSpec(), {}, frozenset({1, 2}))
        assert verdict.dl_ok and verdict.bdl_ok

    def test_partitions_checked_independently(self):
        """A clean key does not excuse a torn one, and vice versa."""
        history = History(
            operations=[
                op(0, 0, "put", ["a", b"1"], None, (1,)),
                op(0, 1, "put", ["b", b"2"], None, (2,)),
            ]
        )
        verdict = check_history(
            history, KvSpec(), {"a": b"1"}, frozenset({1, 2})
        )
        assert not verdict.dl_ok and verdict.bdl_ok
        assert "'b'" in verdict.detail


class TestCounterRequiredness:
    def test_sum_of_durable_increments(self):
        history = History(
            operations=[
                op(0, 0, "increment", [5], None, (1,)),
                op(1, 0, "increment", [3], None, (2,)),
            ]
        )
        spec = CounterSpec()
        assert check_history(history, spec, 8, frozenset({1, 2})).dl_ok
        # Dropping one durable increment: explainable, but DL-lost.
        verdict = check_history(history, spec, 5, frozenset({1, 2}))
        assert not verdict.dl_ok and verdict.bdl_ok
        # A value no subset of increments produces breaks both.
        verdict = check_history(history, spec, 4, frozenset({1, 2}))
        assert not verdict.bdl_ok

    def test_program_order_closure_forces_predecessors(self):
        """Requiring a later op of a thread requires its earlier ones."""
        history = History(
            operations=[
                op(0, 0, "increment", [1], None, (1,)),
                op(0, 1, "increment", [2], None, (2,)),
            ]
        )
        spec = CounterSpec()
        # Only the *second* increment is durable; prefix closure pulls
        # the first in too, so 3 is the one DL-consistent value...
        assert check_history(history, spec, 3, frozenset({2})).dl_ok
        # ...and stopping after the first increment is a DL violation
        # even though that increment itself is not durable.
        verdict = check_history(history, spec, 1, frozenset({2}))
        assert not verdict.dl_ok and verdict.bdl_ok


class TestExternalPublication:
    def test_queue_tolerates_unpublished_durable_insert(self):
        """2LC head sweeps publish externally: ABSENT means pending."""
        history = History(
            operations=[op(0, 0, "insert", [b"entry"], 64, (1,))]
        )
        verdict = check_history(history, QueueSpec(), {}, frozenset({1}))
        assert verdict.dl_ok and verdict.bdl_ok

    def test_log_does_not(self):
        """The log self-publishes: a durable append must be observed."""
        history = History(
            operations=[op(0, 0, "append", [b"entry"], 64, (1,))]
        )
        verdict = check_history(history, LogSpec(), {}, frozenset({1}))
        assert not verdict.dl_ok and verdict.bdl_ok

    def test_queue_still_rejects_invented_entries(self):
        history = History(
            operations=[op(0, 0, "insert", [b"entry"], 64, (1,))]
        )
        verdict = check_history(
            history, QueueSpec(), {64: b"other"}, frozenset({1})
        )
        assert not verdict.bdl_ok


class TestSpecTransitions:
    def test_partition_keys_ignore_foreign_operations(self):
        other = op(0, 0, "mystery", [], None)
        assert KvSpec().partition_key(other) is None
        assert QueueSpec().partition_key(other) is None
        assert LogSpec().partition_key(other) is None
        assert CounterSpec().partition_key(other) is None
        assert MiniFsSpec().partition_key(other) is None

    def test_offset_cells_hold_one_record(self):
        insert = op(0, 0, "insert", [b"x"], 0)
        assert QueueSpec().apply(0, ABSENT, insert) == b"x"
        assert QueueSpec().apply(0, b"y", insert) is REJECT
        append = op(0, 0, "append", [b"x"], 0)
        assert LogSpec().apply(0, ABSENT, append) == b"x"
        assert LogSpec().apply(0, b"y", append) is REJECT

    def test_minifs_create_requires_absence(self):
        spec = MiniFsSpec()
        create = op(0, 0, "create", ["f", b"data"], True)
        assert spec.apply(0, ABSENT, create) == b"data"
        assert spec.apply(0, b"old", create) is REJECT
        write = op(0, 1, "write", ["f", b"new"], True)
        assert spec.apply(0, b"data", write) == b"new"

    def test_incomplete_operation_never_required(self):
        """An op with no response marker cannot be persisted-complete."""
        pending = op(0, 0, "increment", [5], None, (1,), complete=False)
        assert not pending.persisted_complete({1})
        history = History(operations=[pending])
        verdict = check_history(history, CounterSpec(), 0, frozenset({1}))
        assert verdict.dl_ok and verdict.bdl_ok
