"""Tests for marker encoding and history extraction."""

import dataclasses

import pytest

from repro.core.analysis import analyze_graph
from repro.errors import HistoryError
from repro.fuzz import make_target
from repro.histories.record import (
    INVOKE_PREFIX,
    decode_value,
    encode_value,
    extract_history,
)
from repro.sim import make_scheduler
from repro.trace.events import EventKind


def recorded_run(target="log", threads=1, ops=3, seed=7, model="epoch"):
    """A completed recorded run plus its persist graph."""
    run = make_target(target).build(
        threads, ops, make_scheduler("strided2", seed), record_history=True
    )
    graph = analyze_graph(run.trace, model, domain="graph").graph
    return run, graph


@dataclasses.dataclass
class EventsOnly:
    """Stand-in trace: extraction reads nothing but ``events``."""

    events: list


class TestCodec:
    def test_round_trips_scalars_and_bytes(self):
        values = [
            None,
            True,
            -7,
            "name",
            b"\x00\xff payload",
            [b"a", [1, "x"], None],
        ]
        for value in values:
            assert decode_value(encode_value(value)) == value

    def test_tuples_become_lists(self):
        assert encode_value((1, (2, 3))) == [1, [2, 3]]

    def test_rejects_unencodable_values(self):
        with pytest.raises(HistoryError):
            encode_value(object())
        with pytest.raises(HistoryError):
            encode_value(3.14)

    def test_rejects_unknown_objects_on_decode(self):
        with pytest.raises(HistoryError):
            decode_value({"__surprise__": 1})


class TestExtraction:
    def test_single_thread_operations_in_program_order(self):
        run, graph = recorded_run(ops=3)
        history = extract_history(run.trace, graph)
        assert [op.name for op in history.operations] == ["append"] * 3
        assert [op.index for op in history.operations] == [0, 1, 2]
        assert all(op.complete for op in history.operations)
        # Appends return increasing offsets; arguments round-trip as bytes.
        offsets = [op.result for op in history.operations]
        assert offsets == sorted(offsets)
        assert all(isinstance(op.args[0], bytes) for op in history.operations)

    def test_every_persist_attributed(self):
        run, graph = recorded_run(ops=3)
        history = extract_history(run.trace, graph)
        assert history.unattributed == ()
        attributed = sorted(
            pid for op in history.operations for pid in op.persists
        )
        assert attributed == sorted(node.pid for node in graph.nodes)

    def test_attribution_respects_invoke_intervals(self):
        run, graph = recorded_run(ops=3)
        history = extract_history(run.trace, graph)
        for op in history.operations:
            for pid in op.persists:
                node = next(n for n in graph.nodes if n.pid == pid)
                assert node.thread == op.thread
                assert node.first_seq >= op.invoke_seq

    def test_extraction_is_model_independent(self):
        run, epoch_graph = recorded_run(threads=2, ops=2, model="epoch")
        strand_graph = analyze_graph(
            run.trace, "strand", domain="graph"
        ).graph
        epoch_history = extract_history(run.trace, epoch_graph)
        strand_history = extract_history(run.trace, strand_graph)
        assert epoch_history.operations == strand_history.operations

    def test_markers_leave_dag_unchanged(self):
        """Single-threaded, recording on vs. off: identical persist DAG."""
        scheduler = make_scheduler("strided2", 7)
        plain = make_target("log").build(1, 3, scheduler)
        recorded, graph = recorded_run(ops=3)
        plain_graph = analyze_graph(plain.trace, "epoch", domain="graph").graph
        key = lambda g: sorted(
            (n.pid, n.thread, tuple(sorted(g.ancestors(n.pid))))
            for n in g.nodes
        )
        assert key(plain_graph) == key(graph)

    def test_persisted_complete_is_cut_containment(self):
        run, graph = recorded_run(ops=2)
        history = extract_history(run.trace, graph)
        op = history.operations[0]
        assert op.persisted_complete(set(op.persists))
        assert not op.persisted_complete(set(op.persists[:-1]))

    def test_malformed_marker_rejected(self):
        run, graph = recorded_run()
        events = list(run.trace.events)
        slot = next(
            i
            for i, event in enumerate(events)
            if event.kind is EventKind.MARK
            and event.info.startswith(INVOKE_PREFIX)
        )
        events[slot] = dataclasses.replace(
            events[slot], info=INVOKE_PREFIX + "{not json"
        )
        with pytest.raises(HistoryError):
            extract_history(EventsOnly(events), graph)

    def test_response_without_invocation_rejected(self):
        run, graph = recorded_run()
        events = list(run.trace.events)
        slot = next(
            i
            for i, event in enumerate(events)
            if event.kind is EventKind.MARK
            and event.info.startswith(INVOKE_PREFIX)
        )
        del events[slot]
        with pytest.raises(HistoryError):
            extract_history(EventsOnly(events), graph)
