"""End-to-end tests: the oracle axis through fuzz, minimize, corpus, check.

The pinned specs below are seed-searched small cases (threads=2, ops=2)
of the two seeded bugs; each runs in well under a second.
"""

import pytest

from repro.check.checker import CheckConfig, check_target
from repro.errors import FuzzError
from repro.fuzz import (
    CampaignConfig,
    CaseSpec,
    Corpus,
    ReproCase,
    minimize_finding,
    replay_case,
    run_campaign,
    run_case,
)

#: The paper-faithful 2LC queue, violating under strand at this seed.
QUEUE_ORACLE_SPEC = CaseSpec(
    target="queue-2lc-faithful",
    threads=2,
    ops=2,
    sched="strided2",
    sched_seed=2,
    model="epoch",
    cuts="minimal",
    cut_seed=0,
    oracle="dl",
)

#: Racy MiniFS; its torn files fail recovery itself (checksum mismatch).
MINIFS_ORACLE_SPEC = CaseSpec(
    target="minifs-racy",
    threads=2,
    ops=2,
    sched="strided2",
    sched_seed=0,
    model="epoch",
    cuts="minimal",
    cut_seed=0,
    oracle="dl",
)


class TestRunCase:
    def test_seeded_queue_bug_classified(self):
        outcome = run_case(QUEUE_ORACLE_SPEC)
        assert outcome.violation_count > 0
        assert outcome.condition_counts.get("dl+bdl", 0) > 0
        violation = outcome.violations[0]
        assert violation.condition == "dl+bdl"
        # The hole surfaces either as an unparsable frame (recovery
        # fails outright) or as a state no linearization explains.
        assert violation.error.startswith("recovery failed") or (
            "linearizability" in violation.error
        )

    def test_seeded_minifs_bug_fails_recovery(self):
        outcome = run_case(MINIFS_ORACLE_SPEC)
        assert outcome.condition_counts.get("dl+bdl", 0) > 0
        assert any(
            v.error.startswith("recovery failed") for v in outcome.violations
        )

    def test_fixed_counterpart_is_durably_linearizable(self):
        spec = CaseSpec(
            **{**QUEUE_ORACLE_SPEC.describe(), "target": "queue-2lc"}
        )
        outcome = run_case(spec)
        assert outcome.violation_count == 0

    def test_faults_and_oracle_are_mutually_exclusive(self):
        from repro.inject.plan import FaultPlan

        spec = CaseSpec(
            **{
                **QUEUE_ORACLE_SPEC.describe(),
                "target": "kv",
                "faults": FaultPlan.for_kind("torn").to_json(),
            }
        )
        with pytest.raises(FuzzError, match="mutually exclusive"):
            run_case(spec)

    def test_oracle_on_nonrecordable_target_rejected(self):
        spec = CaseSpec(
            **{**QUEUE_ORACLE_SPEC.describe(), "target": "publish-pair"}
        )
        with pytest.raises(FuzzError):
            run_case(spec)

    def test_spec_round_trips_oracle(self):
        assert CaseSpec.from_payload(QUEUE_ORACLE_SPEC.describe()) == (
            QUEUE_ORACLE_SPEC
        )


class TestCampaign:
    def test_rediscovers_and_classifies_the_queue_bug(self):
        config = CampaignConfig(
            target="queue-2lc-faithful", budget=10, seed=0, oracle="dl"
        )
        result = run_campaign(config)
        assert result.condition_counts.get("dl+bdl", 0) > 0
        assert result.findings
        assert all(f.condition == "dl+bdl" for f in result.findings)
        summary = result.summary()
        assert "oracle=dl" in summary
        assert "breaks dl+bdl" in summary

    def test_invariant_summary_untouched(self):
        config = CampaignConfig(target="kv", budget=4, seed=0)
        summary = run_campaign(config).summary()
        assert "oracle=" not in summary
        assert "breaks" not in summary

    def test_config_validation(self):
        with pytest.raises(FuzzError):
            CampaignConfig(target="kv", oracle="nope").validate()
        with pytest.raises(FuzzError, match="does not record"):
            CampaignConfig(target="publish-pair", oracle="dl").validate()
        with pytest.raises(FuzzError, match="mutually exclusive"):
            CampaignConfig(
                target="kv", oracle="dl", faults=("torn",)
            ).validate()


class TestMinimizeAndCorpus:
    def run_pipeline(self, tmp_path, spec):
        """Campaign finding -> minimized repro -> corpus -> replay."""
        outcome = run_case(spec, stop_at_first=True)
        assert outcome.violation_count > 0
        violation = outcome.violations[0]
        from repro.fuzz.campaign import Finding

        finding = Finding(
            spec=spec,
            cut=violation.cut,
            error=violation.error,
            choices=outcome.choices,
            condition=violation.condition,
        )
        minimized = minimize_finding(finding)
        case = minimized.case
        assert case.oracle == spec.oracle
        assert case.condition == violation.condition
        corpus = Corpus(tmp_path)
        path = corpus.add(case)
        loaded = corpus.load(path)
        assert loaded == case
        return replay_case(loaded)

    def test_queue_condition_pinned_through_minimization(self, tmp_path):
        replay = self.run_pipeline(tmp_path, QUEUE_ORACLE_SPEC)
        assert replay.reproduced
        assert replay.condition == "dl+bdl"

    def test_minifs_condition_pinned_through_minimization(self, tmp_path):
        replay = self.run_pipeline(tmp_path, MINIFS_ORACLE_SPEC)
        assert replay.reproduced
        assert replay.condition == "dl+bdl"

    def test_legacy_payload_defaults_to_invariant(self):
        payload = ReproCase(
            target="kv",
            threads=2,
            ops=2,
            sched="strided2",
            sched_seed=1,
            model="epoch",
            cut=(0,),
            choices=(0,),
            error="x",
        ).describe()
        payload.pop("oracle", None)
        payload.pop("condition", None)
        case = ReproCase.from_payload(payload)
        assert case.oracle == "invariant"
        assert case.condition is None


class TestCheck:
    def test_model_check_classifies_the_minifs_bug(self):
        config = CheckConfig(
            models=("epoch",),
            stop_at_first=True,
            max_cuts_per_graph=400,
            oracle="dl",
        )
        result = check_target("minifs-racy", 2, 2, config)
        assert result.violations
        assert result.violations[0].condition == "dl+bdl"
        assert result.condition_counts == {"dl+bdl": 1}
        assert any("breaks dl+bdl" in line for line in result.summary_lines())

    def test_fixed_target_clean_under_oracle(self):
        config = CheckConfig(
            models=("epoch",), max_cuts_per_graph=60, oracle="dl"
        )
        result = check_target("counter", 2, 2, config)
        assert not result.violations

    def test_oracle_requires_recordable_target(self):
        config = CheckConfig(models=("epoch",), oracle="dl")
        with pytest.raises(FuzzError, match="does not record"):
            check_target("publish-pair", 2, 2, config)
