"""Tests for operation-history recording and the DL/BDL oracles."""
