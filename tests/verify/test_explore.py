"""Tests for exhaustive schedule exploration and verification."""

import math

import pytest

from repro.errors import RecoveryError
from repro.memory import NvramImage
from repro.sim import Machine
from repro.verify import (
    ExplorationLimitError,
    count_schedules,
    exhaustively_verify,
    explore_schedules,
)


def two_thread_factory(ops_per_thread):
    """Two threads, each issuing ``ops_per_thread`` volatile stores to
    disjoint addresses (no blocking, so all interleavings are legal)."""

    def build(scheduler):
        machine = Machine(scheduler=scheduler)
        cells = [machine.volatile_heap.malloc(8) for _ in range(2)]

        def body(ctx, cell):
            for i in range(ops_per_thread):
                yield from ctx.store(cell, i + 1)

        for cell in cells:
            machine.spawn(body, cell)
        return machine

    return build


class TestEnumeration:
    @pytest.mark.parametrize("ops", [1, 2, 3])
    def test_schedule_count_is_binomial(self, ops):
        """Each thread takes ops+1 scheduler steps (THREAD_BEGIN plus one
        per store; THREAD_END shares the last step), so the interleaving
        count is C(2(ops+1), ops+1)."""
        steps = ops + 1
        expected = math.comb(2 * steps, steps)
        assert count_schedules(two_thread_factory(ops)) == expected

    def test_single_thread_has_one_schedule(self):
        def build(scheduler):
            machine = Machine(scheduler=scheduler)
            cell = machine.volatile_heap.malloc(8)

            def body(ctx):
                yield from ctx.store(cell, 1)
                yield from ctx.store(cell, 2)

            machine.spawn(body)
            return machine

        assert count_schedules(build) == 1

    def test_all_schedules_distinct(self):
        orders = set()
        for trace, _ in explore_schedules(two_thread_factory(2)):
            orders.add(tuple(event.thread for event in trace))
        assert len(orders) == math.comb(6, 3)

    def test_limit_enforced(self):
        with pytest.raises(ExplorationLimitError):
            count_schedules(two_thread_factory(3), max_schedules=10)

    def test_limit_error_carries_frontier_position(self):
        """Overruns must report where exploration stood — the deepest
        prefix reached and branching stats — instead of losing it."""
        with pytest.raises(ExplorationLimitError) as excinfo:
            count_schedules(two_thread_factory(3), max_schedules=10)
        err = excinfo.value
        assert err.max_depth == 2 * (3 + 1)
        assert len(err.deepest_prefix) == err.max_depth
        assert set(err.deepest_prefix) == {0, 1}
        assert err.branching_max == 2
        assert err.nodes > 0
        assert "deepest prefix" in str(err)

    def test_every_schedule_is_a_complete_run(self):
        for trace, machine in explore_schedules(two_thread_factory(1)):
            assert all(
                thread.state.value == "finished" for thread in machine.threads
            )


def publish_factory(with_barrier):
    """One thread writing a two-word record then publishing a flag."""

    def build(scheduler):
        machine = Machine(scheduler=scheduler)
        base = machine.persistent_heap.malloc(64)
        machine.record_base = base  # stashed for the checker

        def body(ctx):
            yield from ctx.store(base, 0xAAAA)
            yield from ctx.store(base + 8, 0xBBBB)
            if with_barrier:
                yield from ctx.persist_barrier()
            yield from ctx.store(base + 16, 1)  # publish

        machine.spawn(body)
        return machine

    return build


def check_publication(image: NvramImage, machine: Machine) -> None:
    base = machine.record_base
    if image.read(base + 16, 8) == 1:
        if image.read(base, 8) != 0xAAAA or image.read(base + 8, 8) != 0xBBBB:
            raise RecoveryError("published record is torn")


class TestExhaustiveVerification:
    def test_publish_idiom_verified_everywhere(self):
        result = exhaustively_verify(
            publish_factory(with_barrier=True),
            check_publication,
        )
        assert result.ok
        assert result.schedules == 1
        # 3 persists; cuts enumerated exhaustively across 3 models.
        assert result.states_checked >= 3 * 4

    def test_missing_barrier_found_under_relaxed_models(self):
        result = exhaustively_verify(
            publish_factory(with_barrier=False),
            check_publication,
        )
        assert not result.ok
        models = {violation.model for violation in result.violations}
        assert "epoch" in models and "strand" in models
        # Strict persistency orders the publication by program order.
        assert "strict" not in models
        assert "torn" in result.violations[0].describe()

    def test_stop_at_first(self):
        result = exhaustively_verify(
            publish_factory(with_barrier=False),
            check_publication,
            stop_at_first=True,
        )
        assert len(result.violations) == 1

    def test_two_thread_publish_race_caught(self):
        """Cross-thread variant: t0 writes the record, t1 publishes after
        observing a volatile ready flag.  Without barriers, some
        interleaving + cut exposes a torn publication under epoch."""

        def build(scheduler):
            machine = Machine(scheduler=scheduler)
            base = machine.persistent_heap.malloc(64)
            ready = machine.volatile_heap.malloc(8)
            machine.memory.write(ready, 8, 0)
            machine.record_base = base

            def writer(ctx):
                yield from ctx.store(base, 0xAAAA)
                yield from ctx.store(base + 8, 0xBBBB)
                yield from ctx.store(ready, 1)

            def publisher(ctx):
                yield from ctx.wait_equals(ready, 1)
                yield from ctx.store(base + 16, 1)

            machine.spawn(writer)
            machine.spawn(publisher)
            return machine

        result = exhaustively_verify(
            build, check_publication, models=("epoch",)
        )
        assert not result.ok
