"""Tests for job specs, planning, merging, and the durable journal."""

import json

import pytest

from repro.check import CheckConfig, check_target_sharded, shard_tasks
from repro.errors import ReproError, ServeError
from repro.fuzz.campaign import CampaignConfig, case_tasks
from repro.serve import (
    JobRecord,
    job_id,
    load_records,
    merge_job,
    plan_job,
    save_record,
    validate_spec,
)
from repro.serve.workers import execute_shard

CHECK_SPEC = {"kind": "check", "target": "queue-cwl", "threads": 2, "ops": 1}
FUZZ_SPEC = {
    "kind": "fuzz",
    "target": "queue-2lc-faithful",
    "budget": 4,
    "seed": 0,
}


class TestValidateSpec:
    def test_valid_specs_pass_through(self):
        assert validate_spec(CHECK_SPEC) is CHECK_SPEC
        assert validate_spec(FUZZ_SPEC) is FUZZ_SPEC
        assert validate_spec({"kind": "litmus", "programs": ["mp-clflush"]})

    def test_non_object_rejected(self):
        with pytest.raises(ServeError, match="JSON object"):
            validate_spec(["check"])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServeError, match="unknown job kind"):
            validate_spec({"kind": "race"})

    def test_unknown_keys_rejected(self):
        with pytest.raises(ServeError, match="wibble"):
            validate_spec({**CHECK_SPEC, "wibble": 1})

    def test_missing_target_rejected(self):
        with pytest.raises(ServeError, match="missing 'target'"):
            validate_spec({"kind": "fuzz"})
        with pytest.raises(ServeError, match="missing"):
            validate_spec({"kind": "check", "target": "queue-cwl"})

    def test_engine_rejections_become_serve_errors(self):
        with pytest.raises(ServeError, match="invalid fuzz job spec"):
            validate_spec({"kind": "fuzz", "target": "no-such-target"})

    def test_unknown_litmus_program_rejected(self):
        with pytest.raises(ServeError, match="unknown litmus program"):
            validate_spec({"kind": "litmus", "programs": ["nope"]})

    def test_bad_batch_rejected(self):
        with pytest.raises(ServeError, match="batch"):
            validate_spec({**FUZZ_SPEC, "batch": 0})


class TestPlanJob:
    def test_check_plan_matches_shard_tasks(self):
        planned = plan_job(CHECK_SPEC)
        direct = shard_tasks("queue-cwl", 2, 1, CheckConfig(), shard_depth=2)
        for task in direct:
            task["kind"] = "check"
        assert planned == direct

    def test_fuzz_plan_batches_case_tasks_in_order(self):
        config = CampaignConfig(
            target="queue-2lc-faithful", budget=4, seed=0
        )
        cases = case_tasks(config)
        singles = plan_job(FUZZ_SPEC)
        assert [task["cases"] for task in singles] == [[c] for c in cases]
        pairs = plan_job({**FUZZ_SPEC, "batch": 3})
        assert [task["cases"] for task in pairs] == [cases[:3], cases[3:]]

    def test_litmus_plan_is_one_shard_per_program(self):
        planned = plan_job(
            {
                "kind": "litmus",
                "programs": ["mp-clflush", "sb-mfence"],
                "models": ["epoch"],
            }
        )
        assert [task["program"] for task in planned] == [
            "mp-clflush",
            "sb-mfence",
        ]
        assert all(task["kind"] == "litmus" for task in planned)

    def test_plans_are_deterministic(self):
        assert plan_job(FUZZ_SPEC) == plan_job(dict(FUZZ_SPEC))


class TestMergeJob:
    def test_check_merge_matches_sharded_cli_path(self):
        payloads = [execute_shard(task) for task in plan_job(CHECK_SPEC)]
        summary = merge_job(CHECK_SPEC, payloads)
        result, reports = check_target_sharded(
            "queue-cwl", 2, 1, CheckConfig(), jobs=1, shard_depth=2
        )
        assert summary["violations"] == len(result.distinct)
        assert summary["schedules"] == result.stats.schedules
        assert summary["cuts_checked"] == result.stats.cuts_checked
        assert summary["shards"] == len(reports)

    def test_check_merge_surfaces_overrun_failures(self):
        spec = {**CHECK_SPEC, "max_schedules": 1}
        payloads = [execute_shard(task) for task in plan_job(spec)]
        assert any(p["error"] for p in payloads)
        with pytest.raises(ReproError, match="shard"):
            merge_job(spec, payloads)

    def test_fuzz_merge_counts_cases_in_order(self):
        payloads = [execute_shard(task) for task in plan_job(FUZZ_SPEC)]
        summary = merge_job(FUZZ_SPEC, list(reversed(payloads)))
        assert summary["cases"] == 4
        assert summary["violations"] >= 0
        assert "fuzz campaign" in summary["text"]

    def test_litmus_merge_aggregates_reports(self):
        spec = {
            "kind": "litmus",
            "programs": ["mp-clflush"],
            "models": ["strict", "epoch"],
        }
        payloads = [execute_shard(task) for task in plan_job(spec)]
        summary = merge_job(spec, payloads)
        assert summary["programs"] == 1
        assert summary["violations"] == 0  # no domain mismatches
        assert summary["schedules"] > 0


class TestJobRecord:
    def test_payload_roundtrip(self):
        record = JobRecord(
            id=job_id("alice", 0, CHECK_SPEC),
            tenant="alice",
            seq=0,
            spec=CHECK_SPEC,
        )
        rebuilt = JobRecord.from_payload(
            json.loads(json.dumps(record.to_payload()))
        )
        assert rebuilt == record

    def test_digest_guard_rejects_edited_spec(self):
        record = JobRecord(
            id=job_id("alice", 0, CHECK_SPEC),
            tenant="alice",
            seq=0,
            spec=CHECK_SPEC,
        )
        payload = record.to_payload()
        payload["spec"] = {**CHECK_SPEC, "ops": 99}
        with pytest.raises(ServeError, match="digest mismatch"):
            JobRecord.from_payload(payload)

    def test_journal_roundtrip_and_corrupt_entry_skipped(self, tmp_path):
        good = JobRecord(
            id=job_id("alice", 0, CHECK_SPEC),
            tenant="alice",
            seq=0,
            spec=CHECK_SPEC,
        )
        save_record(tmp_path, good)
        (tmp_path / "deadbeef.json").write_text("{not json")
        tampered = JobRecord(
            id=job_id("bob", 1, FUZZ_SPEC),
            tenant="bob",
            seq=1,
            spec=FUZZ_SPEC,
        )
        save_record(tmp_path, tampered)
        payload = json.loads((tmp_path / f"{tampered.id}.json").read_text())
        payload["tenant"] = "mallory"
        (tmp_path / f"{tampered.id}.json").write_text(json.dumps(payload))
        with pytest.warns(RuntimeWarning):
            records = load_records(tmp_path)
        assert records == [good]

    def test_eta_projects_from_throughput(self):
        record = JobRecord(id="x" * 16, tenant="t", seq=0, spec=CHECK_SPEC)
        assert record.eta_seconds() is None  # not started
        record.state = "running"
        record.started_at = record.submitted_at - 10
        record.shards_total = 4
        record.shards_done = 2
        eta = record.eta_seconds()
        assert eta is not None and eta > 0
