"""Tests for fairness, work stealing, and the durable job queue."""

import pytest

from repro.errors import ServeError
from repro.serve import (
    JobQueue,
    TokenBucket,
    WorkStealingScheduler,
    load_records,
    shard_key,
)
from repro.serve.workers import execute_shard

CHECK_SPEC = {"kind": "check", "target": "queue-cwl", "threads": 2, "ops": 1}
LITMUS_SPEC = {"kind": "litmus", "programs": ["mp-clflush"]}


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_empty_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=2.0, clock=clock)
        assert bucket.take() and bucket.take()
        assert not bucket.peek()
        assert not bucket.take()
        clock.advance(1.0)
        assert bucket.peek()
        assert bucket.take()
        assert not bucket.take()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=3.0, clock=clock)
        clock.advance(100.0)
        taken = 0
        while bucket.take():
            taken += 1
            clock.advance(0.0)
        assert taken == 3

    def test_peek_consumes_nothing(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=FakeClock())
        for _ in range(5):
            assert bucket.peek()
        assert bucket.take()

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ServeError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ServeError):
            TokenBucket(rate=1, burst=-1)


def _entry(tenant, job, index):
    return {"tenant": tenant, "job": job, "index": index}


class TestWorkStealingScheduler:
    def test_round_robin_assignment_and_own_queue_first(self):
        sched = WorkStealingScheduler(2)
        entries = [_entry("a", "j", i) for i in range(4)]
        sched.assign(entries)
        # Slot 0 got shards 0 and 2; it drains them oldest-first.
        assert sched.take(0, lambda t: True)["index"] == 0
        assert sched.take(0, lambda t: True)["index"] == 2
        assert sched.steals == 0

    def test_idle_slot_steals_newest_from_longest_queue(self):
        sched = WorkStealingScheduler(3)
        sched.assign([_entry("a", "j", i) for i in range(5)])
        # Queues: slot0=[0,3], slot1=[1,4], slot2=[2].
        assert sched.take(2, lambda t: True)["index"] == 2
        stolen = sched.take(2, lambda t: True)
        assert stolen["index"] in (3, 4)  # back of a longest queue
        assert sched.steals == 1

    def test_ineligible_tenant_never_blocks_others(self):
        sched = WorkStealingScheduler(1)
        sched.assign(
            [_entry("slowpoke", "j1", 0), _entry("speedy", "j2", 0)]
        )
        taken = sched.take(0, lambda tenant: tenant == "speedy")
        assert taken["tenant"] == "speedy"
        assert len(sched) == 1  # slowpoke's shard stays queued
        assert sched.take(0, lambda tenant: False) is None

    def test_drop_job_removes_only_that_job(self):
        sched = WorkStealingScheduler(2)
        sched.assign(
            [_entry("a", "doomed", 0), _entry("a", "kept", 0),
             _entry("a", "doomed", 1)]
        )
        assert sched.drop_job("doomed") == 2
        assert len(sched) == 1
        assert sched.take(1, lambda t: True)["job"] == "kept"


class TestJobQueue:
    def make_queue(self, tmp_path, **kwargs):
        return JobQueue(tmp_path / "state", **kwargs)

    def test_submit_validates_and_journals(self, tmp_path):
        queue = self.make_queue(tmp_path)
        record = queue.submit("alice", CHECK_SPEC)
        assert record.state == "submitted"
        assert (queue.jobs_dir / f"{record.id}.json").exists()
        with pytest.raises(ServeError, match="unknown job kind"):
            queue.submit("alice", {"kind": "nope"})
        with pytest.raises(ServeError, match="tenant"):
            queue.submit("", CHECK_SPEC)

    def test_per_tenant_cap(self, tmp_path):
        queue = self.make_queue(tmp_path, max_jobs_per_tenant=2)
        queue.submit("alice", CHECK_SPEC)
        queue.submit("alice", CHECK_SPEC)
        with pytest.raises(ServeError, match="active job"):
            queue.submit("alice", CHECK_SPEC)
        queue.submit("bob", CHECK_SPEC)  # other tenants unaffected

    def test_same_spec_same_tenant_distinct_jobs(self, tmp_path):
        queue = self.make_queue(tmp_path)
        first = queue.submit("alice", CHECK_SPEC)
        second = queue.submit("alice", CHECK_SPEC)
        assert first.id != second.id

    def test_plan_run_merge_lifecycle(self, tmp_path):
        queue = self.make_queue(tmp_path)
        record = queue.submit("alice", LITMUS_SPEC)
        pending = queue.plan(record)
        assert record.state == "running"
        assert record.shards_total == len(pending) == 1
        assert record.store_misses == 1
        entry = pending[0]
        payload = execute_shard(entry["task"])
        queue.shard_done(entry["job"], entry["index"], entry["key"], payload)
        assert record.state == "done"
        assert record.violations == 0
        assert record.summary["programs"] == 1
        # A replayed completion (retry raced a slow worker) is ignored.
        queue.shard_done(entry["job"], entry["index"], entry["key"], payload)
        assert record.shards_done == 1

    def test_second_tenant_is_served_from_store(self, tmp_path):
        queue = self.make_queue(tmp_path)
        first = queue.submit("alice", LITMUS_SPEC)
        for entry in queue.plan(first):
            queue.shard_done(
                entry["job"], entry["index"], entry["key"],
                execute_shard(entry["task"]),
            )
        assert first.state == "done"
        second = queue.submit("bob", LITMUS_SPEC)
        assert queue.plan(second) == []  # every shard hits the store
        assert second.state == "done"
        assert second.store_hits == 1 and second.store_misses == 0
        assert second.violations == first.violations
        assert queue.stats.store_hits >= 1

    def test_shard_failed_fails_the_job(self, tmp_path):
        queue = self.make_queue(tmp_path)
        record = queue.submit("alice", LITMUS_SPEC)
        queue.plan(record)
        queue.shard_failed(record.id, 0, "worker exploded")
        assert record.state == "failed"
        assert "worker exploded" in record.error
        # Late results for a failed job are stored but change nothing.
        queue.shard_done(record.id, 0, shard_key({"x": 1}), {"kind": "x"})
        assert record.state == "failed"

    def test_cancel(self, tmp_path):
        queue = self.make_queue(tmp_path)
        record = queue.submit("alice", CHECK_SPEC)
        cancelled = queue.cancel(record.id)
        assert cancelled.state == "cancelled"
        # Cancelling a terminal job is a no-op, unknown ids are errors.
        assert queue.cancel(record.id).state == "cancelled"
        with pytest.raises(ServeError, match="unknown job"):
            queue.cancel("feedfacefeedface")

    def test_restart_resumes_interrupted_jobs(self, tmp_path):
        queue = self.make_queue(tmp_path)
        done = queue.submit("alice", LITMUS_SPEC)
        for entry in queue.plan(done):
            queue.shard_done(
                entry["job"], entry["index"], entry["key"],
                execute_shard(entry["task"]),
            )
        interrupted = queue.submit("alice", CHECK_SPEC)
        queue.plan(interrupted)
        assert interrupted.state == "running"

        revived = self.make_queue(tmp_path)
        assert set(revived.jobs) == {done.id, interrupted.id}
        resumable = revived.resumable()
        assert [record.id for record in resumable] == [interrupted.id]
        assert resumable[0].state == "submitted"
        assert revived.jobs[done.id].state == "done"
        # Sequence numbers keep advancing past everything journaled.
        fresh = revived.submit("alice", CHECK_SPEC)
        assert fresh.seq > interrupted.seq

    def test_corrupt_journal_entry_is_quarantined_on_load(self, tmp_path):
        queue = self.make_queue(tmp_path)
        record = queue.submit("alice", CHECK_SPEC)
        path = queue.jobs_dir / f"{record.id}.json"
        path.write_text("{broken")
        with pytest.warns(RuntimeWarning):
            revived = self.make_queue(tmp_path)
        assert revived.jobs == {}
        # The bad entry was moved aside, not deleted: a second load is
        # clean and the bytes are kept for postmortem.
        assert not path.exists()
        assert load_records(queue.jobs_dir) == []
        assert list(queue.jobs_dir.glob("*.quarantined"))
