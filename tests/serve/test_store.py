"""Tests for the content-addressed shared result store."""

import json

from repro.harness.cache import HarnessStats
from repro.serve import ResultStore, shard_key


class TestShardKey:
    def test_stable_across_calls(self):
        task = {"kind": "check", "target": "queue-cwl", "prefix": [0, 1]}
        assert shard_key(task) == shard_key(dict(task))

    def test_key_order_does_not_matter(self):
        assert shard_key({"a": 1, "b": 2}) == shard_key({"b": 2, "a": 1})

    def test_every_field_matters(self):
        base = shard_key({"kind": "check", "prefix": [0, 1]})
        assert shard_key({"kind": "check", "prefix": [0, 2]}) != base
        assert shard_key({"kind": "fuzz", "prefix": [0, 1]}) != base


class TestResultStore:
    def test_miss_store_hit(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = shard_key({"kind": "check", "prefix": [0]})
        assert store.load(key) is None
        assert store.stats.store_misses == 1
        store.store(key, {"violations": []})
        assert store.load(key) == {"violations": []}
        assert store.stats.store_hits == 1
        assert len(store) == 1

    def test_corrupt_entry_is_quarantined_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = shard_key({"kind": "check", "prefix": [1]})
        store.store(key, {"ok": True})
        store.path_for(key).write_text("{not json")
        assert store.load(key) is None
        assert store.stats.store_misses == 1
        assert store.stats.cache_evictions == 1
        assert not store.path_for(key).exists()
        # The corrupt bytes are kept for postmortem.
        quarantined = list((tmp_path / "store").glob("*.quarantined"))
        assert len(quarantined) == 1

    def test_non_object_entry_is_miss(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = shard_key({"kind": "litmus"})
        store.path_for(key).write_text(json.dumps([1, 2, 3]))
        assert store.load(key) is None
        assert store.stats.store_misses == 1

    def test_shared_stats_object(self, tmp_path):
        stats = HarnessStats()
        store = ResultStore(tmp_path / "store", stats=stats)
        store.load(shard_key({"x": 1}))
        assert stats.store_misses == 1
        cache = store.disk_cache()
        assert cache.stats is stats
        assert cache.root == store.root / "cache"
