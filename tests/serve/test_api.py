"""End-to-end tests against a real daemon subprocess.

These drive ``repro serve`` exactly as a deployment would: the daemon
is a separate process listening on a unix socket, tenants talk to it
through the JSON-lines client, and restart/resume goes through the real
journal and store on disk.
"""

import json
import os
import signal
import socket
import subprocess
import sys
from pathlib import Path

import pytest

from repro.errors import ServeError
from repro.serve import default_socket, request, wait_for_daemon, wait_for_job

SRC = str(Path(__file__).resolve().parents[2] / "src")

LITMUS_SPEC = {
    "kind": "litmus",
    "programs": ["mp-clflush"],
    "models": ["strict", "epoch"],
}


def start_daemon(state_dir, workers=2, extra=()):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--state-dir",
            str(state_dir),
            "--workers",
            str(workers),
        ]
        + list(extra),
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )


@pytest.fixture
def daemon(tmp_path):
    state_dir = tmp_path / "state"
    process = start_daemon(state_dir)
    sock = default_socket(state_dir)
    try:
        wait_for_daemon(sock, timeout=30)
        yield state_dir, sock
    finally:
        if process.poll() is None:
            process.kill()
        process.wait(timeout=10)


def test_daemon_end_to_end(daemon):
    state_dir, sock = daemon
    assert request(sock, {"op": "ping"})["ok"]

    # Two tenants submit; the first computes, the second is served from
    # the shared store (same spec => same shard digests).
    alice = request(
        sock, {"op": "submit", "tenant": "alice", "spec": LITMUS_SPEC}
    )["job"]
    done = wait_for_job(sock, alice, timeout=120)
    assert done["state"] == "done"
    assert done["violations"] == 0
    assert done["store_misses"] == done["shards_total"] == 1

    bob = request(
        sock, {"op": "submit", "tenant": "bob", "spec": LITMUS_SPEC}
    )["job"]
    assert bob != alice
    shared = wait_for_job(sock, bob, timeout=30)
    assert shared["state"] == "done"
    assert shared["store_hits"] == shared["shards_total"]
    assert shared["violations"] == done["violations"]

    listing = request(sock, {"op": "jobs"})["jobs"]
    assert [view["id"] for view in listing] == [alice, bob]

    stats = request(sock, {"op": "stats"})
    assert stats["stats"]["store_hits"] >= 1
    assert stats["store_entries"] == 1
    assert stats["workers"] == 2

    # Cancel is terminal whether it raced completion or not.
    carol = request(
        sock, {"op": "submit", "tenant": "carol", "spec": LITMUS_SPEC}
    )["job"]
    cancelled = request(sock, {"op": "cancel", "job": carol})["job"]
    assert cancelled["state"] in ("cancelled", "done")
    final = wait_for_job(sock, carol, timeout=30)
    assert final["state"] == cancelled["state"]


def test_protocol_errors(daemon):
    _, sock = daemon
    with pytest.raises(ServeError, match="unknown op"):
        request(sock, {"op": "transmogrify"})
    with pytest.raises(ServeError, match="unknown job"):
        request(sock, {"op": "status", "job": "feedfacefeedface"})
    with pytest.raises(ServeError, match="unknown job kind"):
        request(sock, {"op": "submit", "tenant": "eve", "spec": {"kind": "x"}})
    with pytest.raises(ServeError, match="JSON object"):
        request(sock, ["not", "a", "request"])
    # A malformed line fails that connection with a clean error reply.
    with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as client:
        client.settimeout(10)
        client.connect(str(sock))
        client.sendall(b"{this is not json\n")
        reply = json.loads(client.recv(65536).decode("utf-8"))
    assert reply["ok"] is False
    assert "malformed request" in reply["error"]


def test_kill_dash_nine_then_resume_completes(tmp_path):
    """A SIGKILLed daemon restarts, re-plans, and finishes its jobs."""
    state_dir = tmp_path / "state"
    sock = default_socket(state_dir)
    spec = {
        "kind": "fuzz",
        "target": "queue-2lc-faithful",
        "budget": 6,
        "seed": 0,
    }

    first = start_daemon(state_dir)
    try:
        wait_for_daemon(sock, timeout=30)
        job = request(
            sock, {"op": "submit", "tenant": "alice", "spec": spec}
        )["job"]
    finally:
        first.send_signal(signal.SIGKILL)
        first.wait(timeout=10)

    journal = json.loads(
        (state_dir / "jobs" / f"{job}.json").read_text()
    )
    assert journal["id"] == job  # the submit was durable before the ack

    second = start_daemon(state_dir)
    try:
        wait_for_daemon(sock, timeout=30)
        view = wait_for_job(sock, job, timeout=300)
        assert view["state"] == "done"
        assert view["shards_done"] == view["shards_total"] == 6
        # Whatever the first daemon managed to store came back as hits.
        assert view["store_hits"] + view["store_misses"] == 6
        request(sock, {"op": "shutdown"})
        second.wait(timeout=30)
        assert second.returncode == 0
    finally:
        if second.poll() is None:
            second.kill()
            second.wait(timeout=10)
    assert not sock.exists()  # clean shutdown removes the socket
