"""Tests for shard execution and the async worker pool."""

import asyncio

import pytest

from repro.errors import ServeError
from repro.harness.parallel import RetryPolicy
from repro.serve import WorkerPool, execute_shard, plan_job


def run_async(coroutine):
    loop = asyncio.new_event_loop()
    try:
        return loop.run_until_complete(coroutine)
    finally:
        loop.close()


class TestExecuteShard:
    def test_check_dispatch_matches_shard_worker(self):
        from repro.check.shard import check_shard_worker

        spec = {"kind": "check", "target": "queue-cwl", "threads": 2, "ops": 1}
        task = plan_job(spec)[0]
        assert execute_shard(task) == check_shard_worker(task)

    def test_fuzz_dispatch_preserves_case_order(self):
        from repro.fuzz.campaign import run_case_task

        spec = {
            "kind": "fuzz",
            "target": "queue-2lc-faithful",
            "budget": 2,
            "seed": 0,
            "batch": 2,
        }
        (task,) = plan_job(spec)
        payload = execute_shard(task)
        assert payload["kind"] == "fuzz"
        assert payload["indices"] == [c["index"] for c in task["cases"]]
        assert payload["outcomes"] == [
            run_case_task(case) for case in task["cases"]
        ]

    def test_litmus_dispatch_returns_report(self):
        (task,) = plan_job(
            {"kind": "litmus", "programs": ["mp-clflush"],
             "models": ["strict", "epoch"]}
        )
        payload = execute_shard(task)
        assert payload["kind"] == "litmus"
        assert payload["report"]["schedules"] > 0

    def test_unknown_kind_rejected(self):
        with pytest.raises(ServeError, match="unknown shard kind"):
            execute_shard({"kind": "espresso"})


class TestWorkerPool:
    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ServeError):
            WorkerPool(0)

    def test_runs_a_real_shard_in_a_subprocess(self):
        pool = WorkerPool(1)
        try:
            (task,) = plan_job({"kind": "litmus", "programs": ["mp-clflush"],
                                "models": ["epoch"]})
            payload = run_async(pool.run(task))
            assert payload == execute_shard(task)
            assert pool.stats.task_attempts == 1
            assert pool.stats.task_failures == 0
        finally:
            pool.shutdown()

    def test_bad_task_exhausts_attempts_and_counts_failure(self):
        pool = WorkerPool(1, policy=RetryPolicy(retries=2, backoff=0.0))
        try:
            with pytest.raises(ServeError, match="after 3 attempt"):
                run_async(pool.run({"kind": "espresso"}))
            assert pool.stats.task_attempts == 3
            assert pool.stats.task_retries == 2
            assert pool.stats.task_failures == 1
            assert pool.stats.failure_exception_types == {"ServeError": 1}
        finally:
            pool.shutdown()

    def test_timeout_counts_and_retries_as_fresh_submission(self):
        pool = WorkerPool(
            2, policy=RetryPolicy(retries=0, timeout=0.05, backoff=0.0)
        )
        try:
            # A check shard with history recording over a busy target is
            # far slower than 50ms; the future is abandoned, not joined.
            spec = {"kind": "check", "target": "queue-2lc-faithful",
                    "threads": 2, "ops": 2}
            task = plan_job(spec)[0]
            with pytest.raises(ServeError, match="timed out"):
                run_async(pool.run(task))
            assert pool.stats.task_timeouts == 1
            assert pool.stats.failure_exception_types == {"TimeoutError": 1}
        finally:
            pool.shutdown()
